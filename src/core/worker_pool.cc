/**
 * @file
 * Worker-pool implementation: frame-body codecs, the supervisor, and
 * the worker-process entry. See worker_pool.hh for the design.
 */

#include "core/worker_pool.hh"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <sstream>
#include <thread>

#include "core/journal.hh"
#include "profile/profile_io.hh"
#include "support/checksum.hh"
#include "support/flight_recorder.hh"
#include "support/logging.hh"
#include "support/shutdown.hh"
#include "support/telemetry.hh"
#include "support/versioned_format.hh"

#if defined(__unix__) || defined(__APPLE__)
#define VANGUARD_WORKER_POSIX 1
#include <cerrno>
#include <csignal>
#include <sys/resource.h>
#include <sys/wait.h>
#include <unistd.h>
#endif

namespace vanguard {

namespace {

constexpr unsigned kWorkerJobVersion = 1;
constexpr unsigned kWorkerResultVersion = 1;
constexpr unsigned kWorkerConfigVersion = 1;
constexpr unsigned kWorkerHelloVersion = 1;

std::string
hexU64(uint64_t v)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "0x%llx",
                  static_cast<unsigned long long>(v));
    return buf;
}

/** %a hexfloat: exact double round-trip through strtod. */
std::string
hexDouble(double v)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%a", v);
    return buf;
}

double
parseHexDouble(const std::string &tok)
{
    return std::strtod(tok.c_str(), nullptr);
}

uint64_t
parseU64(const std::string &tok)
{
    return std::strtoull(tok.c_str(), nullptr, 0);
}

// Frame bodies are built with ipc::appendBlob and walked with
// ipc::BodyCursor — shared with the coordinator's lease codecs.
using ipc::appendBlob;
using Cursor = ipc::BodyCursor;

/**
 * Exact option serialization for job frames. Mirrors the replay
 * bundle's field list (plus width/lockstep/no-threaded-dispatch,
 * which the bundle carries out-of-band or forces) but encodes doubles
 * as hexfloat so the worker re-derives selection/compilation from
 * bit-identical inputs.
 */
std::string
serializeOptionsExact(const VanguardOptions &o)
{
    std::ostringstream os;
    os << "opt width " << o.width << "\n";
    os << "opt predictor " << o.predictor << "\n";
    os << "opt superblock " << (o.applySuperblock ? 1 : 0) << "\n";
    os << "opt decompose " << (o.applyDecomposition ? 1 : 0) << "\n";
    os << "opt shadow-commit " << (o.shadowCommit ? 1 : 0) << "\n";
    os << "opt dbb-entries " << o.dbbEntries << "\n";
    os << "opt l1i-size-kb " << o.l1iSizeKB << "\n";
    os << "opt icache-prefetch " << (o.icachePrefetch ? 1 : 0) << "\n";
    os << "opt lockstep " << (o.lockstep ? 1 : 0) << "\n";
    os << "opt no-threaded-dispatch "
       << (o.noThreadedDispatch ? 1 : 0) << "\n";
    os << "opt sel-min-exposed " << hexDouble(o.selection.minExposed)
       << "\n";
    os << "opt sel-min-execs " << o.selection.minExecs << "\n";
    os << "opt sel-min-predictability "
       << hexDouble(o.selection.minPredictability) << "\n";
    os << "opt sel-forward-only " << (o.selection.forwardOnly ? 1 : 0)
       << "\n";
    os << "opt dec-max-hoist " << o.decompose.maxHoistPerPath << "\n";
    os << "opt dec-max-slice " << o.decompose.maxSliceDepth << "\n";
    os << "opt sb-bias-threshold "
       << hexDouble(o.superblock.biasThreshold) << "\n";
    os << "opt sb-min-execs " << o.superblock.minExecs << "\n";
    os << "opt sb-max-hoist " << o.superblock.maxHoist << "\n";
    os << "opt profile-max-insts " << o.profileMaxInsts << "\n";
    os << "opt sim-max-insts " << o.simMaxInsts << "\n";
    os << "opt cycle-budget " << o.simCycleBudget << "\n";
    os << "opt progress-window " << o.simProgressWindow << "\n";
    return os.str();
}

bool
parseOptLine(std::istringstream &ls, VanguardOptions *o)
{
    std::string name, tok;
    ls >> name;
    if (name == "predictor") {
        ls >> o->predictor;
    } else if (name == "width") {
        ls >> o->width;
    } else if (name == "superblock") {
        int v; ls >> v; o->applySuperblock = v != 0;
    } else if (name == "decompose") {
        int v; ls >> v; o->applyDecomposition = v != 0;
    } else if (name == "shadow-commit") {
        int v; ls >> v; o->shadowCommit = v != 0;
    } else if (name == "dbb-entries") {
        ls >> o->dbbEntries;
    } else if (name == "l1i-size-kb") {
        ls >> o->l1iSizeKB;
    } else if (name == "icache-prefetch") {
        int v; ls >> v; o->icachePrefetch = v != 0;
    } else if (name == "lockstep") {
        int v; ls >> v; o->lockstep = v != 0;
    } else if (name == "no-threaded-dispatch") {
        int v; ls >> v; o->noThreadedDispatch = v != 0;
    } else if (name == "sel-min-exposed") {
        ls >> tok; o->selection.minExposed = parseHexDouble(tok);
    } else if (name == "sel-min-execs") {
        ls >> o->selection.minExecs;
    } else if (name == "sel-min-predictability") {
        ls >> tok; o->selection.minPredictability = parseHexDouble(tok);
    } else if (name == "sel-forward-only") {
        int v; ls >> v; o->selection.forwardOnly = v != 0;
    } else if (name == "dec-max-hoist") {
        ls >> o->decompose.maxHoistPerPath;
    } else if (name == "dec-max-slice") {
        ls >> o->decompose.maxSliceDepth;
    } else if (name == "sb-bias-threshold") {
        ls >> tok; o->superblock.biasThreshold = parseHexDouble(tok);
    } else if (name == "sb-min-execs") {
        ls >> o->superblock.minExecs;
    } else if (name == "sb-max-hoist") {
        ls >> o->superblock.maxHoist;
    } else if (name == "profile-max-insts") {
        ls >> o->profileMaxInsts;
    } else if (name == "sim-max-insts") {
        ls >> o->simMaxInsts;
    } else if (name == "cycle-budget") {
        ls >> o->simCycleBudget;
    } else if (name == "progress-window") {
        ls >> o->simProgressWindow;
    } else {
        return false; // unknown opts tolerated by the caller
    }
    return true;
}

} // namespace

std::string
serializeWorkerJob(const WorkerJob &job)
{
    std::ostringstream os;
    os << "vanguard-workerjob v" << kWorkerJobVersion << "\n";
    os << "phase " << job.phase << "\n";
    os << "slot " << job.slot << "\n";
    os << "scope " << hexU64(job.scopeKey) << "\n";
    os << "scope-start-draw " << job.scopeStartDraw << "\n";
    os << "delivery " << job.delivery << "\n";
    os << "config " << (job.config == 0 ? "base" : "exp") << "\n";
    os << "seed " << hexU64(job.seed) << "\n";
    os << "collect-stalls " << (job.collectStalls ? 1 : 0) << "\n";

    const BenchmarkSpec &sp = job.spec;
    os << "spec name " << (sp.name != nullptr ? sp.name : "kernel")
       << "\n";
    os << "spec fp " << (sp.fp ? 1 : 0) << "\n";
    os << "spec hammocks " << sp.hammocksPU << ' ' << sp.hammocksBP
       << ' ' << sp.hammocksUP << "\n";
    os << "spec loads-per-succ " << sp.loadsPerSucc << "\n";
    os << "spec chained-succ-loads " << sp.chainedSuccLoads << "\n";
    os << "spec alu-per-succ " << sp.aluPerSucc << "\n";
    os << "spec fp-per-succ " << sp.fpPerSucc << "\n";
    os << "spec stores-per-succ " << sp.storesPerSucc << "\n";
    os << "spec noise-pu " << hexDouble(sp.noisePU) << "\n";
    os << "spec taken-pu " << hexDouble(sp.takenPU) << "\n";
    os << "spec working-set-kb " << sp.workingSetKB << "\n";
    os << "spec stride-lines " << sp.strideLines << "\n";
    os << "spec stores-early " << (sp.storesEarly ? 1 : 0) << "\n";
    os << "spec cond-chain-ops " << sp.condChainOps << "\n";
    os << "spec cold " << sp.coldBlocks << ' ' << sp.coldBlockInsts
       << ' ' << sp.coldPeriod << "\n";
    os << "spec iterations " << sp.iterations << "\n";

    os << serializeOptionsExact(job.options);

    std::string out = os.str();
    appendBlob(&out, "profile", job.profileText);
    return out;
}

bool
parseWorkerJob(const std::string &body, WorkerJob *out,
               std::string *error)
{
    Cursor cur{body};
    std::string line;
    if (!cur.line(&line) ||
        !parseVersionedHeader(line, "vanguard-workerjob",
                              kWorkerJobVersion, nullptr)) {
        *error = "missing vanguard-workerjob header";
        return false;
    }
    while (cur.line(&line)) {
        if (line.empty())
            continue;
        std::istringstream ls(line);
        std::string key;
        ls >> key;
        if (key == "phase") {
            ls >> out->phase;
        } else if (key == "slot") {
            ls >> out->slot;
        } else if (key == "scope") {
            std::string tok; ls >> tok;
            out->scopeKey = parseU64(tok);
        } else if (key == "scope-start-draw") {
            ls >> out->scopeStartDraw;
        } else if (key == "delivery") {
            ls >> out->delivery;
        } else if (key == "config") {
            std::string c; ls >> c;
            out->config = c == "base" ? 0 : 1;
        } else if (key == "seed") {
            std::string tok; ls >> tok;
            out->seed = parseU64(tok);
        } else if (key == "collect-stalls") {
            int v; ls >> v; out->collectStalls = v != 0;
        } else if (key == "spec") {
            std::string name, tok;
            ls >> name;
            BenchmarkSpec &sp = out->spec;
            if (name == "name") {
                ls >> out->specName;
            } else if (name == "fp") {
                int v; ls >> v; sp.fp = v != 0;
            } else if (name == "hammocks") {
                ls >> sp.hammocksPU >> sp.hammocksBP >> sp.hammocksUP;
            } else if (name == "loads-per-succ") {
                ls >> sp.loadsPerSucc;
            } else if (name == "chained-succ-loads") {
                ls >> sp.chainedSuccLoads;
            } else if (name == "alu-per-succ") {
                ls >> sp.aluPerSucc;
            } else if (name == "fp-per-succ") {
                ls >> sp.fpPerSucc;
            } else if (name == "stores-per-succ") {
                ls >> sp.storesPerSucc;
            } else if (name == "noise-pu") {
                ls >> tok; sp.noisePU = parseHexDouble(tok);
            } else if (name == "taken-pu") {
                ls >> tok; sp.takenPU = parseHexDouble(tok);
            } else if (name == "working-set-kb") {
                ls >> sp.workingSetKB;
            } else if (name == "stride-lines") {
                ls >> sp.strideLines;
            } else if (name == "stores-early") {
                int v; ls >> v; sp.storesEarly = v != 0;
            } else if (name == "cond-chain-ops") {
                ls >> sp.condChainOps;
            } else if (name == "cold") {
                ls >> sp.coldBlocks >> sp.coldBlockInsts
                   >> sp.coldPeriod;
            } else if (name == "iterations") {
                ls >> sp.iterations;
            }
        } else if (key == "opt") {
            parseOptLine(ls, &out->options);
        } else if (key == "blob") {
            std::string name;
            size_t len = 0;
            ls >> name >> len;
            std::string data;
            if (!cur.raw(len, &data)) {
                *error = "truncated blob '" + name + "'";
                return false;
            }
            if (name == "profile")
                out->profileText = std::move(data);
        } else {
            *error = "unknown job key '" + key + "'";
            return false;
        }
    }
    if (out->phase != "train" && out->phase != "simulate") {
        *error = "bad job phase '" + out->phase + "'";
        return false;
    }
    out->bindSpecName();
    return true;
}

std::string
serializeWorkerResult(const WorkerResult &res)
{
    std::ostringstream os;
    os << "vanguard-workerresult v" << kWorkerResultVersion << "\n";
    os << "slot " << res.slot << "\n";
    os << "status " << (res.ok ? "ok" : "fail") << "\n";
    os << "injected";
    for (uint64_t c : res.injected)
        os << ' ' << c;
    os << "\n";
    std::string out = os.str();
    if (res.ok) {
        if (!res.profileText.empty()) {
            appendBlob(&out, "profile", res.profileText);
        } else {
            JournalRecord rec;
            rec.phase = 'S';
            rec.index = res.slot;
            rec.ok = true;
            rec.stats = res.stats;
            appendBlob(&out, "record", serializeJournalRecord(rec));
        }
    } else {
        out += "kind ";
        out += SimError::kindName(res.kind);
        out += "\n";
        appendBlob(&out, "message", res.message);
    }
    return out;
}

bool
parseWorkerResult(const std::string &body, WorkerResult *out,
                  std::string *error)
{
    Cursor cur{body};
    std::string line;
    if (!cur.line(&line) ||
        !parseVersionedHeader(line, "vanguard-workerresult",
                              kWorkerResultVersion, nullptr)) {
        *error = "missing vanguard-workerresult header";
        return false;
    }
    bool saw_record = false;
    while (cur.line(&line)) {
        if (line.empty())
            continue;
        std::istringstream ls(line);
        std::string key;
        ls >> key;
        if (key == "slot") {
            ls >> out->slot;
        } else if (key == "status") {
            std::string s; ls >> s;
            out->ok = s == "ok";
        } else if (key == "injected") {
            for (uint64_t &c : out->injected)
                ls >> c;
        } else if (key == "kind") {
            std::string k; ls >> k;
            out->kind = SimError::kindFromName(k);
        } else if (key == "blob") {
            std::string name;
            size_t len = 0;
            ls >> name >> len;
            std::string data;
            if (!cur.raw(len, &data)) {
                *error = "truncated blob '" + name + "'";
                return false;
            }
            if (name == "profile") {
                out->profileText = std::move(data);
            } else if (name == "message") {
                out->message = std::move(data);
            } else if (name == "record") {
                JournalRecord rec;
                if (!parseJournalRecord(data, &rec)) {
                    *error = "corrupt stats record in result";
                    return false;
                }
                out->stats = rec.stats;
                saw_record = true;
            }
        } else {
            *error = "unknown result key '" + key + "'";
            return false;
        }
    }
    if (out->ok && out->profileText.empty() && !saw_record) {
        *error = "ok result carries neither profile nor stats";
        return false;
    }
    return true;
}

std::vector<uint64_t>
workerRttBoundsMs()
{
    std::vector<uint64_t> bounds;
    for (uint64_t b = 1; b <= (1u << 16); b <<= 1)
        bounds.push_back(b);
    return bounds;
}

#ifdef VANGUARD_WORKER_POSIX

// ---------------------------------------------------------------------
// Supervisor
// ---------------------------------------------------------------------

namespace {

std::string
selfExePath()
{
    char buf[4096];
    ssize_t n = ::readlink("/proc/self/exe", buf, sizeof(buf) - 1);
    if (n <= 0)
        vg_throw(Config,
                 "cannot resolve this executable's path for worker "
                 "spawn; set an explicit worker exec path");
    return std::string(buf, static_cast<size_t>(n));
}

std::string
describeWaitStatus(int status)
{
    if (WIFSIGNALED(status)) {
        int sig = WTERMSIG(status);
        return detail::csprintf("died on signal %d (%s)", sig,
                                strsignal(sig));
    }
    if (WIFEXITED(status))
        return detail::csprintf("exited with status %d",
                                WEXITSTATUS(status));
    return "vanished with unknown wait status";
}

} // namespace

struct WorkerPool::Slot
{
    size_t idx = 0;
    int pid = -1;
    int fd = -1;
    ipc::FrameChannel chan;
    bool alive = false;
    bool busy = false;
    bool everSpawned = false;
    unsigned spawnFailures = 0;
};

bool
WorkerPool::supported()
{
    return ipc::ipcSupported();
}

WorkerPool::WorkerPool(const Options &opts) : opts_(opts)
{
    if (opts_.workers == 0)
        opts_.workers = 1;
    if (opts_.execPath.empty())
        opts_.execPath = selfExePath();
    if (opts_.faultPlanSpec.empty() && faultinject::armed())
        opts_.faultPlanSpec = faultPlanSpec(faultinject::currentPlan());
    if (opts_.metrics != nullptr)
        opts_.metrics->histogram("engine.worker.job_rtt", workerRttBoundsMs());

    for (unsigned i = 0; i < opts_.workers; ++i) {
        auto slot = std::make_unique<Slot>();
        slot->idx = i;
        slots_.push_back(std::move(slot));
    }
    // Eager spawn: surfaces an unrunnable worker binary (bad exec
    // path, protocol skew) before any job is risked on it. Failures
    // here are tolerated; execute() retries with backoff.
    for (auto &slot : slots_) {
        try {
            spawnWorker(*slot);
        } catch (const SimError &e) {
            vg_warn("worker %zu failed to start: %s", slot->idx,
                    e.detail().c_str());
            slot->spawnFailures++;
            noteLoss("");
        }
    }
}

WorkerPool::~WorkerPool()
{
    try {
        shutdown();
    } catch (...) {
        // Destructor boundary: never throw.
    }
}

void
WorkerPool::bumpCounter(const char *name, uint64_t delta)
{
    if (opts_.metrics != nullptr)
        opts_.metrics->counter(name).add(delta);
}

void
WorkerPool::spawnWorker(Slot &slot)
{
    // Deterministic spawn-fault probe, keyed by a monotonic attempt
    // ordinal so the pattern is independent of the worker count and a
    // failed attempt draws fresh on retry (backoff can make progress).
    uint64_t ordinal;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        ordinal = spawnAttempts_++;
    }
    {
        faultinject::Scope scope(
            workerKillScope(uint64_t{0x5350574e}, ordinal));
        faultinject::site("worker.spawn", SimError::Kind::Io);
    }

    int fds[2];
    ipc::makeSocketPair(fds);
    char fdarg[16];
    std::snprintf(fdarg, sizeof(fdarg), "%d", fds[1]);
    const char *argv[4];
    argv[0] = opts_.execPath.c_str();
    argv[1] = "--worker";
    argv[2] = fdarg;
    argv[3] = nullptr;

    pid_t pid = ::fork();
    if (pid < 0) {
        ::close(fds[0]);
        ::close(fds[1]);
        vg_throw(Io, "fork failed for worker %zu: %s", slot.idx,
                 std::strerror(errno));
    }
    if (pid == 0) {
        // Child: async-signal-safe calls only between fork and exec.
        if (opts_.rlimitMb != 0) {
            struct rlimit rl;
            rl.rlim_cur = rl.rlim_max =
                static_cast<rlim_t>(opts_.rlimitMb) << 20;
            ::setrlimit(RLIMIT_AS, &rl);
        }
        if (opts_.rlimitCpuSec != 0) {
            struct rlimit rl;
            rl.rlim_cur = rl.rlim_max = opts_.rlimitCpuSec;
            ::setrlimit(RLIMIT_CPU, &rl);
        }
        ::execv(argv[0], const_cast<char *const *>(argv));
        ::_exit(127);
    }
    ::close(fds[1]);
    {
        // workerPids() reads these fields concurrently.
        std::lock_guard<std::mutex> lock(mutex_);
        slot.pid = pid;
        slot.fd = fds[0];
    }
    slot.chan.reset(fds[0]);

    // Handshake: hello within the deadline, versioned header, then
    // the config frame (heartbeat interval + fault plan).
    bool hello_ok = false;
    std::string why;
    try {
        ipc::Frame hello;
        ipc::ReadStatus st =
            slot.chan.read(&hello,
                           static_cast<int>(opts_.helloTimeoutMs));
        if (st != ipc::ReadStatus::Ok) {
            why = st == ipc::ReadStatus::Eof
                      ? "worker exited before hello"
                      : "worker hello timed out";
        } else if (hello.type != ipc::kFrameHello) {
            why = detail::csprintf("expected hello, got frame '%c'",
                                   hello.type);
        } else {
            std::string first = hello.body.substr(
                0, hello.body.find('\n'));
            if (!parseVersionedHeader(first, "vanguard-worker",
                                      kWorkerHelloVersion, nullptr)) {
                why = "worker hello carries no vanguard-worker header";
            } else {
                std::ostringstream cfg;
                cfg << "vanguard-workerconfig v"
                    << kWorkerConfigVersion << "\n";
                cfg << "heartbeat-ms " << opts_.heartbeatTimeoutMs
                    << "\n";
                std::string body = cfg.str();
                appendBlob(&body, "fault-plan", opts_.faultPlanSpec);
                ipc::writeFrame(slot.fd, ipc::kFrameConfig, body);
                hello_ok = true;
            }
        }
    } catch (const SimError &e) {
        why = e.detail();
    }
    if (!hello_ok) {
        killWorker(slot, false);
        vg_throw(Io, "worker %zu (pid %d) handshake failed: %s",
                 slot.idx, pid, why.c_str());
    }

    slot.spawnFailures = 0;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        slot.alive = true;
        if (slot.everSpawned) {
            stats_.restarts++;
        } else {
            stats_.spawns++;
        }
    }
    if (slot.everSpawned)
        bumpCounter("engine.worker.restarts");
    slot.everSpawned = true;
}

void
WorkerPool::killWorker(Slot &slot, bool already_dead)
{
    int pid, fd;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        pid = slot.pid;
        fd = slot.fd;
        slot.pid = -1;
        slot.fd = -1;
        slot.alive = false;
    }
    if (pid > 0) {
        if (!already_dead)
            ::kill(pid, SIGKILL);
        int status = 0;
        while (::waitpid(pid, &status, 0) < 0 && errno == EINTR) {
        }
    }
    if (fd >= 0)
        ::close(fd);
}

std::string
WorkerPool::reapWorker(Slot &slot)
{
    int pid, fd;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        pid = slot.pid;
        fd = slot.fd;
        slot.pid = -1;
        slot.fd = -1;
        slot.alive = false;
    }
    int status = 0;
    pid_t r;
    while ((r = ::waitpid(pid, &status, 0)) < 0 && errno == EINTR) {
    }
    std::string fate = r == pid ? describeWaitStatus(status)
                                : "could not be reaped";
    if (fd >= 0)
        ::close(fd);
    return fate;
}

void
WorkerPool::noteLoss(const std::string &job_key)
{
    (void)job_key;
    std::lock_guard<std::mutex> lock(mutex_);
    if (++consecutiveLosses_ > opts_.restartStormLimit && !broken_) {
        broken_ = true;
        brokenReason_ = detail::csprintf(
            "worker restart storm: %u consecutive worker losses with "
            "no completed job; breaking the pool",
            consecutiveLosses_);
    }
}

void
WorkerPool::noteCompletion()
{
    std::lock_guard<std::mutex> lock(mutex_);
    consecutiveLosses_ = 0;
}

size_t
WorkerPool::acquireSlot()
{
    std::unique_lock<std::mutex> lock(mutex_);
    slotFree_.wait(lock, [&] {
        for (auto &s : slots_)
            if (!s->busy)
                return true;
        return false;
    });
    // Prefer a live worker; fall back to a dead slot (respawned by
    // ensureAlive).
    for (auto &s : slots_) {
        if (!s->busy && s->alive) {
            s->busy = true;
            return s->idx;
        }
    }
    for (auto &s : slots_) {
        if (!s->busy) {
            s->busy = true;
            return s->idx;
        }
    }
    vg_throw(Invariant, "acquireSlot woke without a free slot");
}

void
WorkerPool::releaseSlot(size_t idx)
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        slots_[idx]->busy = false;
    }
    slotFree_.notify_one();
}

void
WorkerPool::ensureAlive(Slot &slot)
{
    while (!slot.alive) {
        {
            std::lock_guard<std::mutex> lock(mutex_);
            if (broken_)
                throw SimError(SimError::Kind::Internal,
                               brokenReason_);
        }
        unsigned delay = opts_.backoff.delayMs(slot.spawnFailures);
        if (delay != 0)
            std::this_thread::sleep_for(
                std::chrono::milliseconds(delay));
        try {
            spawnWorker(slot);
        } catch (const SimError &e) {
            slot.spawnFailures++;
            noteLoss("");
            vg_warn("worker %zu respawn failed (attempt %u): %s",
                    slot.idx, slot.spawnFailures, e.detail().c_str());
        }
    }
}

WorkerResult
WorkerPool::execute(WorkerJob job)
{
    job.bindSpecName();
    const std::string key =
        job.phase + ":" + std::to_string(job.slot);

    for (;;) {
        {
            std::lock_guard<std::mutex> lock(mutex_);
            if (broken_)
                throw SimError(SimError::Kind::Internal,
                               brokenReason_);
        }
        size_t idx = acquireSlot();
        Slot &slot = *slots_[idx];

        try {
            ensureAlive(slot);
        } catch (...) {
            releaseSlot(idx);
            throw;
        }

        {
            std::lock_guard<std::mutex> lock(mutex_);
            job.delivery = deliveries_[key]++;
        }

        // Dispatch. A write failure (real or injected) means the
        // stream's integrity is unknown: restart the worker and let
        // the transient Io error reach the runner's retry logic.
        try {
            faultinject::site("worker.frame.write",
                              SimError::Kind::Io);
            ipc::writeFrame(slot.fd, ipc::kFrameJob,
                            serializeWorkerJob(job));
        } catch (const SimError &) {
            killWorker(slot, false);
            noteLoss(key);
            releaseSlot(idx);
            throw;
        }
        {
            std::lock_guard<std::mutex> lock(mutex_);
            stats_.dataFrames++;
        }
        bumpCounter("engine.worker.frames");

        auto t0 = std::chrono::steady_clock::now();
        bool worker_lost = false;
        std::string fate;
        WorkerResult res;

        // Await the result; every received frame re-arms the
        // heartbeat deadline, so the poll timeout IS the watchdog.
        for (;;) {
            ipc::Frame f;
            ipc::ReadStatus st;
            try {
                st = slot.chan.read(
                    &f, static_cast<int>(opts_.heartbeatTimeoutMs));
            } catch (const SimError &e) {
                // CRC mismatch / garbage length: protocol desync.
                killWorker(slot, false);
                worker_lost = true;
                fate = "protocol desync (" + e.detail() + ")";
                break;
            }
            if (st == ipc::ReadStatus::Timeout) {
                int pid = slot.pid;
                killWorker(slot, false);
                {
                    std::lock_guard<std::mutex> lock(mutex_);
                    stats_.heartbeatMisses++;
                }
                bumpCounter("engine.worker.heartbeat_misses");
                flightRecord("error", "worker.heartbeat_miss",
                             detail::csprintf(
                                 "pid %d silent past %u ms during %s "
                                 "job %zu",
                                 pid, opts_.heartbeatTimeoutMs,
                                 job.phase.c_str(), job.slot));
                // A hang is a determination about the job, not a
                // supervision failure: non-transient, no quarantine
                // bookkeeping (the runner will not retry it).
                noteCompletion();
                {
                    std::lock_guard<std::mutex> lock(mutex_);
                    consecutiveDeaths_.erase(key);
                }
                releaseSlot(idx);
                vg_throw(Hang,
                         "worker heartbeat deadline (%u ms) missed; "
                         "killed worker pid %d during %s job %zu",
                         opts_.heartbeatTimeoutMs, pid,
                         job.phase.c_str(), job.slot);
            }
            if (st == ipc::ReadStatus::Eof) {
                fate = reapWorker(slot);
                worker_lost = true;
                break;
            }
            if (f.type == ipc::kFrameHeartbeat)
                continue;
            if (f.type == ipc::kFrameStats) {
                // Advisory live stats: feed the hub and move on. A
                // malformed body is dropped, never a desync —
                // telemetry must not be able to kill a worker.
                PeerStats ps;
                if (opts_.telemetry != nullptr &&
                    parsePeerStats(f.body, &ps)) {
                    ps.identity = detail::csprintf(
                        "slot%zu:pid%d", idx, slot.pid);
                    opts_.telemetry->notePeerStats(ps);
                }
                continue;
            }
            if (f.type == ipc::kFrameResult) {
                std::string err;
                WorkerResult parsed;
                if (!parseWorkerResult(f.body, &parsed, &err)) {
                    killWorker(slot, false);
                    worker_lost = true;
                    fate = "protocol desync (" + err + ")";
                    break;
                }
                res = std::move(parsed);
                goto have_result;
            }
            // Unknown frame type: desync.
            killWorker(slot, false);
            worker_lost = true;
            fate = detail::csprintf("protocol desync (frame '%c')",
                                    f.type);
            break;
        }

        if (worker_lost) {
            unsigned deaths;
            {
                std::lock_guard<std::mutex> lock(mutex_);
                deaths = ++consecutiveDeaths_[key];
            }
            noteLoss(key);
            releaseSlot(idx);
            flightRecord("event", "worker.lost",
                         detail::csprintf("%s during %s job %zu "
                                          "(death %u)",
                                          fate.c_str(),
                                          job.phase.c_str(), job.slot,
                                          deaths));
            if (deaths >= opts_.quarantineDeaths) {
                {
                    std::lock_guard<std::mutex> lock(mutex_);
                    stats_.quarantinedJobs++;
                    consecutiveDeaths_.erase(key);
                }
                bumpCounter("engine.worker.quarantined_jobs");
                flightRecord("error", "worker.quarantine",
                             detail::csprintf("%s job %zu killed %u "
                                              "consecutive workers",
                                              job.phase.c_str(),
                                              job.slot, deaths));
                vg_throw(Internal,
                         "poison job quarantined: %s job %zu killed "
                         "%u consecutive workers (last worker %s)",
                         job.phase.c_str(), job.slot, deaths,
                         fate.c_str());
            }
            vg_warn("worker running %s job %zu %s; redelivering "
                    "(death %u of %u)",
                    job.phase.c_str(), job.slot, fate.c_str(), deaths,
                    opts_.quarantineDeaths);
            continue; // redeliver on a fresh worker
        }

    have_result:
        {
            std::lock_guard<std::mutex> lock(mutex_);
            stats_.dataFrames++;
            consecutiveDeaths_.erase(key);
        }
        bumpCounter("engine.worker.frames");
        noteCompletion();
        for (size_t k = 0; k < FaultPlan::kNumKinds; ++k)
            faultinject::recordRemoteInjections(
                static_cast<SimError::Kind>(k), res.injected[k]);
        if (opts_.metrics != nullptr) {
            auto rtt =
                std::chrono::duration_cast<std::chrono::milliseconds>(
                    std::chrono::steady_clock::now() - t0)
                    .count();
            opts_.metrics
                ->histogram("engine.worker.job_rtt", workerRttBoundsMs())
                .observe(static_cast<uint64_t>(rtt));
        }
        releaseSlot(idx);
        if (!res.ok)
            throw SimError(res.kind, res.message);
        return res;
    }
}

void
WorkerPool::shutdown()
{
    std::vector<Slot *> live;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (shutdownDone_)
            return;
        shutdownDone_ = true;
        for (auto &s : slots_)
            if (s->pid > 0)
                live.push_back(s.get());
    }

    // Graceful phase: QUIT frame + exactly one SIGTERM per worker.
    for (Slot *s : live) {
        try {
            ipc::writeFrame(s->fd, ipc::kFrameQuit, "");
        } catch (const SimError &) {
            // Already dead; the reap below sorts it out.
        }
        ::kill(s->pid, SIGTERM);
    }

    // Bounded reap; SIGKILL stragglers. No zombie survives this.
    auto deadline = std::chrono::steady_clock::now() +
                    std::chrono::milliseconds(opts_.reapTimeoutMs);
    std::vector<Slot *> pending = live;
    while (!pending.empty() &&
           std::chrono::steady_clock::now() < deadline) {
        for (size_t i = 0; i < pending.size();) {
            int status = 0;
            pid_t r = ::waitpid(pending[i]->pid, &status, WNOHANG);
            if (r == pending[i]->pid || (r < 0 && errno == ECHILD)) {
                pending[i]->pid = -1;
                pending.erase(pending.begin() +
                              static_cast<long>(i));
            } else {
                ++i;
            }
        }
        if (!pending.empty())
            std::this_thread::sleep_for(
                std::chrono::milliseconds(5));
    }
    for (Slot *s : pending) {
        ::kill(s->pid, SIGKILL);
        int status = 0;
        while (::waitpid(s->pid, &status, 0) < 0 && errno == EINTR) {
        }
        s->pid = -1;
    }
    for (Slot *s : live) {
        if (s->fd >= 0)
            ::close(s->fd);
        s->fd = -1;
        s->alive = false;
    }
}

std::vector<int>
WorkerPool::workerPids() const
{
    std::vector<int> pids;
    std::lock_guard<std::mutex> lock(mutex_);
    for (const auto &s : slots_)
        if (s->alive && s->pid > 0)
            pids.push_back(s->pid);
    return pids;
}

WorkerPool::Stats
WorkerPool::stats() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return stats_;
}

// ---------------------------------------------------------------------
// Worker-process entry
// ---------------------------------------------------------------------

namespace {

/**
 * Per-(spec, width, config, profile, options) compile cache: a worker
 * simulates every REF seed of a group against one compiled artifact,
 * exactly as the in-process runner shares artifacts across seed jobs.
 */
struct ArtifactCache
{
    struct Entry
    {
        uint64_t key;
        CompiledConfig config;
    };
    std::vector<Entry> entries;

    static uint64_t
    keyOf(const WorkerJob &job)
    {
        std::string material = serializeOptionsExact(job.options);
        material += '|';
        material += job.specName;
        material += '|';
        material += std::to_string(job.config);
        material += '|';
        material += std::to_string(job.spec.iterations);
        uint64_t h = fnv1a64(material);
        return h ^ (fnv1a64(job.profileText) * 0x9e3779b97f4a7c15ull);
    }

    CompiledConfig &
    get(const WorkerJob &job, bool *hit_out)
    {
        uint64_t key = keyOf(job);
        for (Entry &e : entries)
            if (e.key == key) {
                if (hit_out != nullptr)
                    *hit_out = true;
                return e.config;
            }
        if (hit_out != nullptr)
            *hit_out = false;
        ProfileParseResult parsed =
            deserializeProfile(job.profileText);
        if (!parsed.ok)
            vg_throw(Io, "job frame carries unreadable profile: %s",
                     parsed.error.c_str());
        TrainArtifacts train = trainFromProfile(
            job.spec, std::move(parsed.profile), job.options);
        bool decomposed =
            job.config == 1 && job.options.applyDecomposition;
        entries.push_back(
            {key, compileConfig(job.spec, train, decomposed,
                                job.options)});
        return entries.back().config;
    }
};

/** Deliberate-crash hooks: the VANGUARD_WORKER_SEGV_SLOT chaos knob
 *  ("<phase>:<slot>" SIGSEGVs that job on every delivery — the
 *  poison-job drill) and the worker.kill fault site (see the site
 *  catalog in fault_inject.hh). */
void
maybeDeliberateCrash(const WorkerJob &job)
{
    const char *env = std::getenv("VANGUARD_WORKER_SEGV_SLOT");
    if (env != nullptr && *env != '\0') {
        std::string want(env);
        if (want == job.phase + ":" + std::to_string(job.slot)) {
            volatile int *p = nullptr;
            *p = 1; // intentional SIGSEGV
        }
    }
    if (faultinject::armed()) {
        faultinject::Scope scope(
            workerKillScope(job.scopeKey, job.delivery));
        if (faultinject::siteFires("worker.kill",
                                   SimError::Kind::Internal))
            ::raise(SIGKILL);
    }
}

} // namespace

struct JobBodyRunner::Cache
{
    ArtifactCache artifacts;
    std::atomic<uint64_t> hits{0};
    std::atomic<uint64_t> misses{0};
};

JobBodyRunner::JobBodyRunner() : cache_(new Cache) {}
JobBodyRunner::~JobBodyRunner() = default;

JobBodyRunner::BodyStats
JobBodyRunner::bodyStats() const
{
    BodyStats out;
    out.jobsDone = jobsDone_.load(std::memory_order_relaxed);
    out.instsRetired = instsRetired_.load(std::memory_order_relaxed);
    if (cache_ != nullptr) {
        out.cacheHits = cache_->hits.load(std::memory_order_relaxed);
        out.cacheMisses =
            cache_->misses.load(std::memory_order_relaxed);
    }
    return out;
}

WorkerResult
JobBodyRunner::run(const WorkerJob &job)
{
    maybeDeliberateCrash(job);

    WorkerResult res;
    res.slot = job.slot;
    uint64_t before[FaultPlan::kNumKinds];
    for (size_t k = 0; k < FaultPlan::kNumKinds; ++k)
        before[k] =
            faultinject::injectedCount(static_cast<SimError::Kind>(k));

    try {
        // Re-enter the job's fault scope past the draws the
        // supervisor consumed, so in-body sites fire exactly as they
        // would in the in-process pool.
        faultinject::Scope scope(job.scopeKey, job.scopeStartDraw);
        if (job.phase == "train") {
            TrainArtifacts train = trainBenchmark(job.spec, job.options);
            res.profileText = serializeProfile(train.profile);
        } else {
            bool hit = false;
            CompiledConfig &config = cache_->artifacts.get(job, &hit);
            (hit ? cache_->hits : cache_->misses)
                .fetch_add(1, std::memory_order_relaxed);
            res.stats = simulateConfig(job.spec, config, job.options,
                                       job.seed, job.collectStalls);
            instsRetired_.fetch_add(res.stats.dynamicInsts,
                                    std::memory_order_relaxed);
        }
        res.ok = true;
        jobsDone_.fetch_add(1, std::memory_order_relaxed);
    } catch (const SimError &e) {
        res.ok = false;
        res.kind = e.kind();
        res.message = e.detail();
    } catch (const std::exception &e) {
        res.ok = false;
        res.kind = SimError::Kind::Internal;
        res.message = e.what();
    }

    for (size_t k = 0; k < FaultPlan::kNumKinds; ++k)
        res.injected[k] =
            faultinject::injectedCount(static_cast<SimError::Kind>(k)) -
            before[k];
    return res;
}

int
runWorkerProcess(int fd)
{
    // A process-group SIGINT/SIGTERM latches the drain flag; the
    // in-flight job finishes and the loop exits cleanly. The
    // supervisor owns actual kill policy.
    installShutdownHandlers();

    ipc::FrameChannel chan(fd);
    try {
        std::ostringstream hello;
        hello << "vanguard-worker v" << kWorkerHelloVersion << "\n";
        hello << "pid " << ::getpid() << "\n";
        ipc::writeFrame(fd, ipc::kFrameHello, hello.str());
    } catch (const SimError &) {
        return 1;
    }

    std::mutex write_mutex;
    std::atomic<bool> stopping{false};
    std::atomic<bool> job_active{false};
    std::atomic<uint64_t> hb_scope{0};
    std::atomic<unsigned> hb_interval_ms{
        heartbeatIntervalMs(10000)};
    JobBodyRunner runner;   ///< before the heartbeat thread: it reads
                            ///< bodyStats() for the STATS frames
    std::mutex meta_mutex;
    std::string cur_phase;  ///< under meta_mutex

    std::thread heartbeat([&] {
        while (!stopping.load(std::memory_order_relaxed)) {
            unsigned interval = hb_interval_ms.load();
            unsigned slept = 0;
            // Sleep in small steps so stopping stays prompt even
            // with long intervals.
            while (slept < interval &&
                   !stopping.load(std::memory_order_relaxed)) {
                unsigned step =
                    interval - slept < 25 ? interval - slept : 25;
                std::this_thread::sleep_for(
                    std::chrono::milliseconds(step));
                slept += step;
            }
            if (stopping.load(std::memory_order_relaxed))
                break;
            if (!job_active.load(std::memory_order_acquire))
                continue;
            bool suppress = false;
            {
                // Per-job suppression pattern: every beat of a job
                // draws under the same key at draw 0 (see
                // workerHeartbeatScope). siteFires never counts, so
                // injected-gauge identity across modes holds.
                faultinject::Scope scope(
                    workerHeartbeatScope(hb_scope.load()));
                suppress = faultinject::siteFires(
                    "worker.heartbeat", SimError::Kind::Hang);
            }
            if (suppress)
                continue;
            std::lock_guard<std::mutex> lock(write_mutex);
            try {
                ipc::writeFrame(fd, ipc::kFrameHeartbeat, "");
                // Ride an advisory STATS frame on each *delivered*
                // beat. Gating stats on the same suppression draw
                // matters: a fault plan that silences a job's beats
                // must silence its stats too, or the extra frames
                // would keep re-arming the supervisor's watchdog
                // deadline.
                PeerStats ps;
                ps.pid = static_cast<uint64_t>(::getpid());
                {
                    std::lock_guard<std::mutex> mlock(meta_mutex);
                    ps.phase = cur_phase;
                }
                JobBodyRunner::BodyStats bs = runner.bodyStats();
                ps.jobsDone = bs.jobsDone;
                ps.instsRetired = bs.instsRetired;
                ps.cacheHits = bs.cacheHits;
                ps.cacheMisses = bs.cacheMisses;
                ipc::writeFrame(fd, ipc::kFrameStats,
                                serializePeerStats(ps));
            } catch (const SimError &) {
                // Supervisor gone; the main loop will see EOF.
            }
        }
    });

    int exit_code = 0;
    for (;;) {
        if (shutdownRequested())
            break;
        ipc::Frame frame;
        ipc::ReadStatus st;
        try {
            st = chan.read(&frame, 250);
        } catch (const SimError &) {
            exit_code = 1; // desync from the supervisor: bail loudly
            break;
        }
        if (st == ipc::ReadStatus::Timeout)
            continue;
        if (st == ipc::ReadStatus::Eof)
            break; // supervisor gone: orphaned workers self-clean
        if (frame.type == ipc::kFrameQuit)
            break;
        if (frame.type == ipc::kFrameConfig) {
            unsigned deadline_ms = 10000;
            std::string plan_spec;
            Cursor cur{frame.body};
            std::string line;
            bool ok = cur.line(&line) &&
                      parseVersionedHeader(line,
                                           "vanguard-workerconfig",
                                           kWorkerConfigVersion,
                                           nullptr);
            while (ok && cur.line(&line)) {
                std::istringstream ls(line);
                std::string key;
                ls >> key;
                if (key == "heartbeat-ms") {
                    ls >> deadline_ms;
                } else if (key == "blob") {
                    std::string name;
                    size_t len = 0;
                    ls >> name >> len;
                    std::string data;
                    if (!cur.raw(len, &data)) {
                        ok = false;
                        break;
                    }
                    if (name == "fault-plan")
                        plan_spec = std::move(data);
                }
            }
            if (!ok) {
                exit_code = 1;
                break;
            }
            hb_interval_ms.store(heartbeatIntervalMs(deadline_ms));
            if (plan_spec.empty()) {
                faultinject::disarm();
            } else {
                try {
                    faultinject::arm(parseFaultPlan(plan_spec));
                } catch (const SimError &) {
                    exit_code = 1;
                    break;
                }
            }
            continue;
        }
        if (frame.type != ipc::kFrameJob)
            continue; // forward compatibility: skip unknown frames

        WorkerJob job;
        std::string err;
        if (!parseWorkerJob(frame.body, &job, &err)) {
            exit_code = 1;
            break;
        }

        hb_scope.store(job.scopeKey);
        {
            std::lock_guard<std::mutex> mlock(meta_mutex);
            cur_phase = job.phase;
        }
        job_active.store(true, std::memory_order_release);
        WorkerResult res = runner.run(job);
        job_active.store(false, std::memory_order_release);

        std::lock_guard<std::mutex> lock(write_mutex);
        try {
            ipc::writeFrame(fd, ipc::kFrameResult,
                            serializeWorkerResult(res));
        } catch (const SimError &) {
            exit_code = 1;
            break;
        }
    }

    stopping.store(true, std::memory_order_relaxed);
    heartbeat.join();
    return exit_code;
}

#else // !VANGUARD_WORKER_POSIX

struct WorkerPool::Slot
{
};

bool
WorkerPool::supported()
{
    return false;
}

WorkerPool::WorkerPool(const Options &opts) : opts_(opts)
{
    vg_throw(Config,
             "process isolation is not supported on this platform");
}

WorkerPool::~WorkerPool() = default;

WorkerResult
WorkerPool::execute(WorkerJob)
{
    vg_throw(Config,
             "process isolation is not supported on this platform");
}

void WorkerPool::shutdown() {}

std::vector<int>
WorkerPool::workerPids() const
{
    return {};
}

WorkerPool::Stats
WorkerPool::stats() const
{
    return {};
}

int
runWorkerProcess(int)
{
    return 2;
}

struct JobBodyRunner::Cache
{
};

JobBodyRunner::JobBodyRunner() : cache_(nullptr) {}
JobBodyRunner::~JobBodyRunner() = default;

JobBodyRunner::BodyStats
JobBodyRunner::bodyStats() const
{
    return {};
}

WorkerResult
JobBodyRunner::run(const WorkerJob &)
{
    vg_throw(Config,
             "process isolation is not supported on this platform");
}

#endif // VANGUARD_WORKER_POSIX

} // namespace vanguard
