#include "core/selfbench.hh"

#include <chrono>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "bpred/factory.hh"
#include "core/vanguard.hh"
#include "support/logging.hh"
#include "support/metrics.hh"
#include "support/versioned_format.hh"
#include "workloads/suites.hh"

namespace vanguard {

namespace {

using Clock = std::chrono::steady_clock;

/** Geometric mean of xs (0 when empty or any x <= 0). */
double
geomean(const std::vector<double> &xs)
{
    if (xs.empty())
        return 0.0;
    double acc = 0.0;
    for (double x : xs) {
        if (x <= 0.0)
            return 0.0;
        acc += std::log(x);
    }
    return std::exp(acc / static_cast<double>(xs.size()));
}

/**
 * Time one execution path for a prepared cell: best wall time over
 * `repeats` runs, each on a freshly built REF memory image (the build
 * and predictor construction sit outside the timed region). Verifies
 * the run is deterministic across repeats — insts and cycles must not
 * move — which doubles as a cheap fast-vs-reference identity check at
 * the call site.
 */
double
timePath(const BenchmarkSpec &spec, const BenchmarkArtifacts &art,
         const VanguardOptions &vopts, unsigned repeats,
         bool force_reference, uint64_t *insts_out, uint64_t *cycles_out)
{
    double best = 0.0;
    uint64_t insts = 0;
    uint64_t cycles = 0;
    for (unsigned rep = 0; rep < repeats; ++rep) {
        BuiltKernel ref = buildKernel(spec, kRefSeeds[0]);
        auto pred = makePredictor(vopts.predictor, kRefSeeds[0]);
        SimOptions sopts;
        sopts.maxInsts = vopts.simMaxInsts;
        sopts.cycleBudget = vopts.simCycleBudget;
        sopts.progressWindow = vopts.simProgressWindow;
        sopts.forceReference = force_reference;
        if (!art.exp.hoistedMask.empty())
            sopts.hoistedMask = &art.exp.hoistedMask;

        Clock::time_point t0 = Clock::now();
        SimStats s = simulateWithDecoded(art.exp.prog, *art.exp.decoded,
                                         *ref.mem, *pred, vopts.machine(),
                                         sopts);
        double dt =
            std::chrono::duration<double>(Clock::now() - t0).count();

        vg_assert(rep == 0 || (s.dynamicInsts == insts &&
                               s.cycles == cycles),
                  "selfbench: nondeterministic run for %s "
                  "(insts %llu vs %llu, cycles %llu vs %llu)",
                  spec.name, (unsigned long long)s.dynamicInsts,
                  (unsigned long long)insts,
                  (unsigned long long)s.cycles,
                  (unsigned long long)cycles);
        insts = s.dynamicInsts;
        cycles = s.cycles;
        if (rep == 0 || dt < best)
            best = dt;
    }
    *insts_out = insts;
    *cycles_out = cycles;
    return best;
}

void
appendNumber(std::ostringstream &os, double v)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.6g", v);
    os << buf;
}

/** Pull `"key": <number>` out of a JSON blob (first occurrence). */
bool
scanJsonNumber(const std::string &text, const std::string &key,
               double *out)
{
    std::string needle = "\"" + key + "\":";
    size_t pos = text.find(needle);
    if (pos == std::string::npos)
        return false;
    const char *p = text.c_str() + pos + needle.size();
    char *end = nullptr;
    double v = std::strtod(p, &end);
    if (end == p)
        return false;
    *out = v;
    return true;
}

/** Pull `"key": "<string>"` out of a JSON blob (first occurrence). */
bool
scanJsonString(const std::string &text, const std::string &key,
               std::string *out)
{
    std::string needle = "\"" + key + "\": \"";
    size_t pos = text.find(needle);
    if (pos == std::string::npos)
        return false;
    size_t start = pos + needle.size();
    size_t close = text.find('"', start);
    if (close == std::string::npos)
        return false;
    *out = text.substr(start, close - start);
    return true;
}

} // namespace

double
SelfBenchReport::geomeanFastIps() const
{
    std::vector<double> xs;
    for (const SelfBenchCell &c : cells)
        xs.push_back(c.fastIps());
    return geomean(xs);
}

double
SelfBenchReport::geomeanRefIps() const
{
    std::vector<double> xs;
    for (const SelfBenchCell &c : cells)
        xs.push_back(c.refIps());
    return geomean(xs);
}

double
SelfBenchReport::geomeanSpeedup() const
{
    std::vector<double> xs;
    for (const SelfBenchCell &c : cells)
        xs.push_back(c.speedup());
    return geomean(xs);
}

std::vector<SelfBenchCase>
selfBenchDefaultMatrix()
{
    std::vector<SelfBenchCase> matrix;
    for (const char *wl : {"bzip2-like", "h264ref-like", "mcf-like"})
        for (unsigned width : {2u, 4u, 8u})
            for (const char *pred : {"gshare3", "tage"})
                matrix.push_back({wl, width, pred});
    return matrix;
}

SelfBenchReport
runSelfBench(const SelfBenchOptions &opts, std::FILE *progress)
{
    vg_assert(opts.repeats > 0, "selfbench: repeats must be positive");
    std::vector<SelfBenchCase> matrix =
        opts.matrix.empty() ? selfBenchDefaultMatrix() : opts.matrix;

    SelfBenchReport report;
    report.repeats = opts.repeats;
    report.iterations = opts.iterations;
    report.cells.reserve(matrix.size());

    for (const SelfBenchCase &cell : matrix) {
        BenchmarkSpec spec = findBenchmark(cell.workload);
        spec.iterations = static_cast<unsigned>(opts.iterations);

        VanguardOptions vopts;
        vopts.width = cell.width;
        vopts.predictor = cell.predictor;

        // Train + compile once per cell, outside every timed region;
        // the timed runs share the artifacts read-only, as a sweep's
        // seeds do.
        BenchmarkArtifacts art = prepareBenchmark(spec, vopts);

        SelfBenchCell out;
        out.spec = cell;
        out.fastSec = timePath(spec, art, vopts, opts.repeats,
                               /*force_reference=*/false,
                               &out.dynamicInsts, &out.cycles);
        if (opts.timeReference) {
            uint64_t ref_insts = 0;
            uint64_t ref_cycles = 0;
            out.refSec = timePath(spec, art, vopts, opts.repeats,
                                  /*force_reference=*/true, &ref_insts,
                                  &ref_cycles);
            vg_assert(ref_insts == out.dynamicInsts &&
                          ref_cycles == out.cycles,
                      "selfbench: fast/reference divergence for %s "
                      "(insts %llu vs %llu, cycles %llu vs %llu)",
                      spec.name, (unsigned long long)out.dynamicInsts,
                      (unsigned long long)ref_insts,
                      (unsigned long long)out.cycles,
                      (unsigned long long)ref_cycles);
        }
        report.cells.push_back(out);

        if (progress != nullptr) {
            char suffix[48] = "";
            if (opts.timeReference) {
                std::snprintf(suffix, sizeof(suffix),
                              " (%.2fx vs reference)", out.speedup());
            }
            std::fprintf(progress,
                         "selfbench %-13s w%u %-8s %8.1f M-insts/s "
                         "fast%s\n",
                         cell.workload.c_str(), cell.width,
                         cell.predictor.c_str(), out.fastIps() / 1e6,
                         suffix);
        }
    }
    return report;
}

std::string
selfBenchToJson(const SelfBenchReport &report)
{
    std::ostringstream os;
    os << "{\n  \"schema\": \"" << kSelfBenchMagic << " v"
       << kSelfBenchVersion << "\",\n";
    os << "  \"repeats\": " << report.repeats << ",\n";
    os << "  \"iterations\": " << report.iterations << ",\n";
    os << "  \"cells\": [";
    for (size_t i = 0; i < report.cells.size(); ++i) {
        const SelfBenchCell &c = report.cells[i];
        os << (i == 0 ? "\n" : ",\n");
        os << "    {\"workload\": \"" << c.spec.workload
           << "\", \"width\": " << c.spec.width << ", \"predictor\": \""
           << c.spec.predictor << "\",\n";
        os << "     \"dynamic_insts\": " << c.dynamicInsts
           << ", \"cycles\": " << c.cycles << ",\n";
        os << "     \"fast_sec\": ";
        appendNumber(os, c.fastSec);
        os << ", \"fast_ips\": ";
        appendNumber(os, c.fastIps());
        os << ", \"fast_cps\": ";
        appendNumber(os, c.fastCps());
        os << ",\n     \"ref_sec\": ";
        appendNumber(os, c.refSec);
        os << ", \"ref_ips\": ";
        appendNumber(os, c.refIps());
        os << ", \"ref_cps\": ";
        appendNumber(os, c.refCps());
        os << ", \"speedup\": ";
        appendNumber(os, c.speedup());
        os << "}";
    }
    os << (report.cells.empty() ? "],\n" : "\n  ],\n");
    os << "  \"geomean_fast_ips\": ";
    appendNumber(os, report.geomeanFastIps());
    os << ",\n  \"geomean_ref_ips\": ";
    appendNumber(os, report.geomeanRefIps());
    os << ",\n  \"geomean_speedup\": ";
    appendNumber(os, report.geomeanSpeedup());
    os << "\n}";
    return os.str();
}

void
selfBenchExportTo(const SelfBenchReport &report, MetricsRegistry &registry)
{
    for (const SelfBenchCell &c : report.cells) {
        std::string prefix = "selfbench." +
                             sanitizeMetricKey(c.spec.workload) + ".w" +
                             std::to_string(c.spec.width) + "." +
                             sanitizeMetricKey(c.spec.predictor) + ".";
        registry.gauge(prefix + "fast_ips").set(c.fastIps());
        registry.gauge(prefix + "fast_cps").set(c.fastCps());
        registry.gauge(prefix + "ref_ips").set(c.refIps());
        registry.gauge(prefix + "speedup").set(c.speedup());
    }
    registry.gauge("selfbench.geomean_fast_ips")
        .set(report.geomeanFastIps());
    registry.gauge("selfbench.geomean_speedup")
        .set(report.geomeanSpeedup());
}

SelfBenchBaseline
loadSelfBenchBaseline(const std::string &path)
{
    SelfBenchBaseline base;
    std::ifstream in(path);
    if (!in) {
        base.error = "cannot open " + path;
        return base;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    std::string text = buf.str();

    std::string schema;
    if (!scanJsonString(text, "schema", &schema)) {
        base.error = "no schema field in " + path;
        return base;
    }
    unsigned version = 0;
    if (!parseVersionedHeader(schema, kSelfBenchMagic, kSelfBenchVersion,
                              &version)) {
        base.error = "not a " + std::string(kSelfBenchMagic) +
                     " file: " + path;
        return base;
    }
    if (!scanJsonNumber(text, "geomean_fast_ips",
                        &base.geomeanFastIps) ||
        !scanJsonNumber(text, "geomean_speedup",
                        &base.geomeanSpeedup)) {
        base.error = "missing geomean fields in " + path;
        return base;
    }
    base.ok = true;
    return base;
}

} // namespace vanguard
