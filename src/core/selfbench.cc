#include "core/selfbench.hh"

#include <chrono>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <sstream>

#include "bpred/factory.hh"
#include "core/vanguard.hh"
#include "support/logging.hh"
#include "support/metrics.hh"
#include "support/versioned_format.hh"
#include "workloads/suites.hh"

namespace vanguard {

namespace {

using Clock = std::chrono::steady_clock;

/** Geometric mean of xs (0 when empty or any x <= 0). */
double
geomean(const std::vector<double> &xs)
{
    if (xs.empty())
        return 0.0;
    double acc = 0.0;
    for (double x : xs) {
        if (x <= 0.0)
            return 0.0;
        acc += std::log(x);
    }
    return std::exp(acc / static_cast<double>(xs.size()));
}

/**
 * Time one execution path for a prepared cell: best wall time over
 * `repeats` runs, each on a freshly built REF memory image (the build
 * and predictor construction sit outside the timed region). Verifies
 * the run is deterministic across repeats — insts and cycles must not
 * move — which doubles as a cheap fast-vs-reference identity check at
 * the call site.
 */
double
timePath(const BenchmarkSpec &spec, const BenchmarkArtifacts &art,
         const VanguardOptions &vopts, unsigned repeats,
         bool force_reference, bool no_threaded, uint64_t *insts_out,
         uint64_t *cycles_out)
{
    double best = 0.0;
    uint64_t insts = 0;
    uint64_t cycles = 0;
    for (unsigned rep = 0; rep < repeats; ++rep) {
        BuiltKernel ref = buildKernel(spec, kRefSeeds[0]);
        auto pred = makePredictor(vopts.predictor, kRefSeeds[0]);
        SimOptions sopts;
        sopts.maxInsts = vopts.simMaxInsts;
        sopts.cycleBudget = vopts.simCycleBudget;
        sopts.progressWindow = vopts.simProgressWindow;
        sopts.forceReference = force_reference;
        sopts.noThreadedDispatch = no_threaded;
        if (!art.exp.hoistedMask.empty())
            sopts.hoistedMask = &art.exp.hoistedMask;

        Clock::time_point t0 = Clock::now();
        SimStats s = simulateWithDecoded(art.exp.prog, *art.exp.decoded,
                                         *ref.mem, *pred, vopts.machine(),
                                         sopts);
        double dt =
            std::chrono::duration<double>(Clock::now() - t0).count();

        vg_assert(rep == 0 || (s.dynamicInsts == insts &&
                               s.cycles == cycles),
                  "selfbench: nondeterministic run for %s "
                  "(insts %llu vs %llu, cycles %llu vs %llu)",
                  spec.name, (unsigned long long)s.dynamicInsts,
                  (unsigned long long)insts,
                  (unsigned long long)s.cycles,
                  (unsigned long long)cycles);
        insts = s.dynamicInsts;
        cycles = s.cycles;
        if (rep == 0 || dt < best)
            best = dt;
    }
    *insts_out = insts;
    *cycles_out = cycles;
    return best;
}

/**
 * Time the batched stream: `lanes_n` seed lanes (kRefSeeds[0] + i)
 * through one simulateBatch call. Lane construction sits outside the
 * timed region, as train/compile do for the solo streams. Returns the
 * best wall time and the per-run committed-instruction total across
 * lanes; asserts every lane succeeds and that lane 0 — which re-runs
 * the solo streams' input — bit-matches their insts/cycles.
 */
double
timeBatched(const BenchmarkSpec &spec, const BenchmarkArtifacts &art,
            const VanguardOptions &vopts, unsigned repeats,
            unsigned lanes_n, uint64_t solo_insts, uint64_t solo_cycles,
            uint64_t *insts_out)
{
    double best = 0.0;
    uint64_t total_insts = 0;
    for (unsigned rep = 0; rep < repeats; ++rep) {
        std::vector<BuiltKernel> refs;
        refs.reserve(lanes_n);
        std::vector<std::unique_ptr<DirectionPredictor>> preds;
        preds.reserve(lanes_n);
        std::vector<BatchLaneInput> lanes(lanes_n);
        for (unsigned i = 0; i < lanes_n; ++i) {
            refs.push_back(buildKernel(spec, kRefSeeds[0] + i));
            preds.push_back(
                makePredictor(vopts.predictor, kRefSeeds[0] + i));
            lanes[i].mem = refs[i].mem.get();
            lanes[i].predictor = preds[i].get();
        }
        SimOptions sopts;
        sopts.maxInsts = vopts.simMaxInsts;
        sopts.cycleBudget = vopts.simCycleBudget;
        sopts.progressWindow = vopts.simProgressWindow;
        if (!art.exp.hoistedMask.empty())
            sopts.hoistedMask = &art.exp.hoistedMask;

        Clock::time_point t0 = Clock::now();
        std::vector<BatchLaneResult> results = simulateBatch(
            art.exp.prog, *art.exp.decoded, lanes, vopts.machine(),
            sopts);
        double dt =
            std::chrono::duration<double>(Clock::now() - t0).count();

        uint64_t total = 0;
        for (const BatchLaneResult &r : results) {
            vg_assert(!r.failed, "selfbench: batched lane failed for "
                      "%s: %s", spec.name, r.errorMessage.c_str());
            total += r.stats.dynamicInsts;
        }
        vg_assert(results[0].stats.dynamicInsts == solo_insts &&
                      results[0].stats.cycles == solo_cycles,
                  "selfbench: batched lane 0 diverges from solo for "
                  "%s (insts %llu vs %llu, cycles %llu vs %llu)",
                  spec.name,
                  (unsigned long long)results[0].stats.dynamicInsts,
                  (unsigned long long)solo_insts,
                  (unsigned long long)results[0].stats.cycles,
                  (unsigned long long)solo_cycles);
        vg_assert(rep == 0 || total == total_insts,
                  "selfbench: nondeterministic batched run for %s",
                  spec.name);
        total_insts = total;
        if (rep == 0 || dt < best)
            best = dt;
    }
    *insts_out = total_insts;
    return best;
}

void
appendNumber(std::ostringstream &os, double v)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.6g", v);
    os << buf;
}

/** Pull `"key": <number>` out of a JSON blob (first occurrence). */
bool
scanJsonNumber(const std::string &text, const std::string &key,
               double *out)
{
    std::string needle = "\"" + key + "\":";
    size_t pos = text.find(needle);
    if (pos == std::string::npos)
        return false;
    const char *p = text.c_str() + pos + needle.size();
    char *end = nullptr;
    double v = std::strtod(p, &end);
    if (end == p)
        return false;
    *out = v;
    return true;
}

/** Pull `"key": "<string>"` out of a JSON blob (first occurrence). */
bool
scanJsonString(const std::string &text, const std::string &key,
               std::string *out)
{
    std::string needle = "\"" + key + "\": \"";
    size_t pos = text.find(needle);
    if (pos == std::string::npos)
        return false;
    size_t start = pos + needle.size();
    size_t close = text.find('"', start);
    if (close == std::string::npos)
        return false;
    *out = text.substr(start, close - start);
    return true;
}

} // namespace

double
SelfBenchReport::geomeanFastIps() const
{
    std::vector<double> xs;
    for (const SelfBenchCell &c : cells)
        xs.push_back(c.fastIps());
    return geomean(xs);
}

double
SelfBenchReport::geomeanRefIps() const
{
    std::vector<double> xs;
    for (const SelfBenchCell &c : cells)
        xs.push_back(c.refIps());
    return geomean(xs);
}

double
SelfBenchReport::geomeanSpeedup() const
{
    std::vector<double> xs;
    for (const SelfBenchCell &c : cells)
        xs.push_back(c.speedup());
    return geomean(xs);
}

double
SelfBenchReport::geomeanSwitchIps() const
{
    std::vector<double> xs;
    for (const SelfBenchCell &c : cells)
        xs.push_back(c.switchIps());
    return geomean(xs);
}

double
SelfBenchReport::geomeanThreadedIps() const
{
    std::vector<double> xs;
    for (const SelfBenchCell &c : cells)
        xs.push_back(c.threadedIps());
    return geomean(xs);
}

double
SelfBenchReport::geomeanBatchedIps() const
{
    std::vector<double> xs;
    for (const SelfBenchCell &c : cells)
        xs.push_back(c.batchedIps());
    return geomean(xs);
}

double
SelfBenchReport::geomeanThreadedSpeedup() const
{
    std::vector<double> xs;
    for (const SelfBenchCell &c : cells)
        xs.push_back(c.threadedSpeedup());
    return geomean(xs);
}

double
SelfBenchReport::geomeanBatchedSpeedup() const
{
    std::vector<double> xs;
    for (const SelfBenchCell &c : cells)
        xs.push_back(c.batchedSpeedup());
    return geomean(xs);
}

std::vector<SelfBenchCase>
selfBenchDefaultMatrix()
{
    std::vector<SelfBenchCase> matrix;
    for (const char *wl : {"bzip2-like", "h264ref-like", "mcf-like"})
        for (unsigned width : {2u, 4u, 8u})
            for (const char *pred : {"gshare3", "tage"})
                matrix.push_back({wl, width, pred});
    return matrix;
}

SelfBenchReport
runSelfBench(const SelfBenchOptions &opts, std::FILE *progress)
{
    vg_assert(opts.repeats > 0, "selfbench: repeats must be positive");
    std::vector<SelfBenchCase> matrix =
        opts.matrix.empty() ? selfBenchDefaultMatrix() : opts.matrix;

    SelfBenchReport report;
    report.repeats = opts.repeats;
    report.iterations = opts.iterations;
    report.cells.reserve(matrix.size());

    for (const SelfBenchCase &cell : matrix) {
        BenchmarkSpec spec = findBenchmark(cell.workload);
        spec.iterations = static_cast<unsigned>(opts.iterations);

        VanguardOptions vopts;
        vopts.width = cell.width;
        vopts.predictor = cell.predictor;

        // Train + compile once per cell, outside every timed region;
        // the timed runs share the artifacts read-only, as a sweep's
        // seeds do.
        BenchmarkArtifacts art = prepareBenchmark(spec, vopts);

        SelfBenchCell out;
        out.spec = cell;

        // Switch stream first; it also pins the cell's insts/cycles.
        out.switchSec = timePath(spec, art, vopts, opts.repeats,
                                 /*force_reference=*/false,
                                 /*no_threaded=*/true,
                                 &out.dynamicInsts, &out.cycles);
        if (threadedDispatchAvailable()) {
            uint64_t t_insts = 0;
            uint64_t t_cycles = 0;
            out.threadedSec = timePath(spec, art, vopts, opts.repeats,
                                       /*force_reference=*/false,
                                       /*no_threaded=*/false, &t_insts,
                                       &t_cycles);
            vg_assert(t_insts == out.dynamicInsts &&
                          t_cycles == out.cycles,
                      "selfbench: switch/threaded divergence for %s",
                      spec.name);
        }
        // v1 "fast" stream: whatever a default build runs in a sweep.
        out.fastSec =
            out.threadedSec > 0 ? out.threadedSec : out.switchSec;
        if (opts.batchLanes > 0) {
            out.batchedLanes = opts.batchLanes;
            out.batchedSec = timeBatched(
                spec, art, vopts, opts.repeats, opts.batchLanes,
                out.dynamicInsts, out.cycles, &out.batchedInsts);
        }
        if (opts.timeReference) {
            uint64_t ref_insts = 0;
            uint64_t ref_cycles = 0;
            out.refSec = timePath(spec, art, vopts, opts.repeats,
                                  /*force_reference=*/true,
                                  /*no_threaded=*/false, &ref_insts,
                                  &ref_cycles);
            vg_assert(ref_insts == out.dynamicInsts &&
                          ref_cycles == out.cycles,
                      "selfbench: fast/reference divergence for %s "
                      "(insts %llu vs %llu, cycles %llu vs %llu)",
                      spec.name, (unsigned long long)out.dynamicInsts,
                      (unsigned long long)ref_insts,
                      (unsigned long long)out.cycles,
                      (unsigned long long)ref_cycles);
        }
        report.cells.push_back(out);

        if (progress != nullptr) {
            char batched[48] = "";
            if (out.batchedSec > 0) {
                std::snprintf(batched, sizeof(batched),
                              "  %8.1f batched", out.batchedIps() / 1e6);
            }
            char suffix[48] = "";
            if (opts.timeReference) {
                std::snprintf(suffix, sizeof(suffix),
                              " (%.2fx vs reference)", out.speedup());
            }
            std::fprintf(progress,
                         "selfbench %-13s w%u %-8s %8.1f M-insts/s "
                         "fast%s%s\n",
                         cell.workload.c_str(), cell.width,
                         cell.predictor.c_str(), out.fastIps() / 1e6,
                         batched, suffix);
        }
    }
    return report;
}

std::string
selfBenchToJson(const SelfBenchReport &report)
{
    std::ostringstream os;
    os << "{\n  \"schema\": \"" << kSelfBenchMagic << " v"
       << kSelfBenchVersion << "\",\n";
    os << "  \"repeats\": " << report.repeats << ",\n";
    os << "  \"iterations\": " << report.iterations << ",\n";
    os << "  \"cells\": [";
    for (size_t i = 0; i < report.cells.size(); ++i) {
        const SelfBenchCell &c = report.cells[i];
        os << (i == 0 ? "\n" : ",\n");
        os << "    {\"workload\": \"" << c.spec.workload
           << "\", \"width\": " << c.spec.width << ", \"predictor\": \""
           << c.spec.predictor << "\",\n";
        os << "     \"dynamic_insts\": " << c.dynamicInsts
           << ", \"cycles\": " << c.cycles << ",\n";
        os << "     \"fast_sec\": ";
        appendNumber(os, c.fastSec);
        os << ", \"fast_ips\": ";
        appendNumber(os, c.fastIps());
        os << ", \"fast_cps\": ";
        appendNumber(os, c.fastCps());
        os << ",\n     \"switch_sec\": ";
        appendNumber(os, c.switchSec);
        os << ", \"switch_ips\": ";
        appendNumber(os, c.switchIps());
        os << ", \"threaded_sec\": ";
        appendNumber(os, c.threadedSec);
        os << ", \"threaded_ips\": ";
        appendNumber(os, c.threadedIps());
        os << ",\n     \"batched_sec\": ";
        appendNumber(os, c.batchedSec);
        os << ", \"batched_ips\": ";
        appendNumber(os, c.batchedIps());
        os << ", \"batched_lanes\": " << c.batchedLanes
           << ", \"batched_insts\": " << c.batchedInsts;
        os << ",\n     \"ref_sec\": ";
        appendNumber(os, c.refSec);
        os << ", \"ref_ips\": ";
        appendNumber(os, c.refIps());
        os << ", \"ref_cps\": ";
        appendNumber(os, c.refCps());
        os << ", \"speedup\": ";
        appendNumber(os, c.speedup());
        os << "}";
    }
    os << (report.cells.empty() ? "],\n" : "\n  ],\n");
    os << "  \"geomean_fast_ips\": ";
    appendNumber(os, report.geomeanFastIps());
    os << ",\n  \"geomean_ref_ips\": ";
    appendNumber(os, report.geomeanRefIps());
    os << ",\n  \"geomean_speedup\": ";
    appendNumber(os, report.geomeanSpeedup());
    os << ",\n  \"geomean_switch_ips\": ";
    appendNumber(os, report.geomeanSwitchIps());
    os << ",\n  \"geomean_threaded_ips\": ";
    appendNumber(os, report.geomeanThreadedIps());
    os << ",\n  \"geomean_batched_ips\": ";
    appendNumber(os, report.geomeanBatchedIps());
    os << ",\n  \"geomean_threaded_speedup\": ";
    appendNumber(os, report.geomeanThreadedSpeedup());
    os << ",\n  \"geomean_batched_speedup\": ";
    appendNumber(os, report.geomeanBatchedSpeedup());
    os << "\n}";
    return os.str();
}

void
selfBenchExportTo(const SelfBenchReport &report, MetricsRegistry &registry)
{
    for (const SelfBenchCell &c : report.cells) {
        std::string prefix = "selfbench." +
                             sanitizeMetricKey(c.spec.workload) + ".w" +
                             std::to_string(c.spec.width) + "." +
                             sanitizeMetricKey(c.spec.predictor) + ".";
        registry.gauge(prefix + "fast_ips").set(c.fastIps());
        registry.gauge(prefix + "fast_cps").set(c.fastCps());
        registry.gauge(prefix + "switch_ips").set(c.switchIps());
        registry.gauge(prefix + "threaded_ips").set(c.threadedIps());
        registry.gauge(prefix + "batched_ips").set(c.batchedIps());
        registry.gauge(prefix + "ref_ips").set(c.refIps());
        registry.gauge(prefix + "speedup").set(c.speedup());
    }
    registry.gauge("selfbench.geomean_fast_ips")
        .set(report.geomeanFastIps());
    registry.gauge("selfbench.geomean_speedup")
        .set(report.geomeanSpeedup());
    registry.gauge("selfbench.geomean_switch_ips")
        .set(report.geomeanSwitchIps());
    registry.gauge("selfbench.geomean_threaded_ips")
        .set(report.geomeanThreadedIps());
    registry.gauge("selfbench.geomean_batched_ips")
        .set(report.geomeanBatchedIps());
}

SelfBenchBaseline
loadSelfBenchBaseline(const std::string &path)
{
    SelfBenchBaseline base;
    std::ifstream in(path);
    if (!in) {
        base.error = "cannot open " + path;
        return base;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    std::string text = buf.str();

    std::string schema;
    if (!scanJsonString(text, "schema", &schema)) {
        base.error = "no schema field in " + path;
        return base;
    }
    unsigned version = 0;
    if (!parseVersionedHeader(schema, kSelfBenchMagic, kSelfBenchVersion,
                              &version)) {
        base.error = "not a " + std::string(kSelfBenchMagic) +
                     " file: " + path;
        return base;
    }
    base.version = version;
    if (!scanJsonNumber(text, "geomean_fast_ips",
                        &base.geomeanFastIps) ||
        !scanJsonNumber(text, "geomean_speedup",
                        &base.geomeanSpeedup)) {
        base.error = "missing geomean fields in " + path;
        return base;
    }
    // v2 stream geomeans: optional, so a v1 baseline still loads with
    // gates on these streams skipping (value 0).
    scanJsonNumber(text, "geomean_switch_ips", &base.geomeanSwitchIps);
    scanJsonNumber(text, "geomean_threaded_ips",
                   &base.geomeanThreadedIps);
    scanJsonNumber(text, "geomean_batched_ips",
                   &base.geomeanBatchedIps);
    base.ok = true;
    return base;
}

} // namespace vanguard
