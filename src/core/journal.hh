/**
 * @file
 * Crash-safe sweep journal: the `vanguard-journal v2` format.
 *
 * A journal is an append-only, per-record-checksummed ledger of
 * completed experiment jobs, written next to a sweep so that an
 * OOM-kill, Ctrl-C, disk-full, or reboot at job 4700/4800 loses at
 * most the jobs that were literally in flight. Layout:
 *
 *   vanguard-journal v2
 *   spec 4f2a9c01d3e8b7a6      # FNV-1a of the canonical sweep spec
 *   jobs 4800                  # total jobs in the sweep
 *   T 0 ok @1a2b3c4d
 *   C 3 ok @...
 *   S 17 ok <counters...> stalls <n> <id:cyc:ev>...
 *       bpred <n> <key>:<val>... @...    # (one line; v2 section)
 *   S 18 fail Hang 1 <bundle> <message> @...
 *
 * One line per record: phase letter (T=train, C=compile, S=simulate),
 * the deterministic job index within that phase, `ok` or `fail`, the
 * payload, and ` @<crc32>` over everything before it. A torn or
 * bit-rotted line fails its CRC and is simply *absent* — the job
 * re-runs on resume; nothing downstream trusts a partial record. The
 * header is written with writeFileAtomic (write-temp + fsync +
 * rename) and every appended record is fsync'd, so the ledger is
 * exactly as durable as the filesystem allows.
 *
 * `ok` simulate records carry the full SimStats counter set
 * (including the per-branch stall map backing ASPCB and, since v2,
 * the predictor-internal `bpred.*` counters), so a resumed
 * sweep replays them bit-identically without re-simulating. `ok`
 * train records pair with a checkpointed TRAIN profile file
 * (`train-<benchmark>.vgp`, the profile_io v1 format); compile
 * records are completion markers — compiled programs are cheap, pure
 * recomputations and are rebuilt on resume. `fail` records replay as
 * the original JobFailure (kind, attempts, message, bundle path).
 *
 * Resume validation: the `spec` line must match the resuming sweep's
 * canonical (benchmark list, widths, seeds, options) fingerprint;
 * a mismatch refuses with SimError(Config). Unknown future journal
 * versions refuse with SimError(Io) via parseVersionedHeader.
 */

#ifndef VANGUARD_CORE_JOURNAL_HH
#define VANGUARD_CORE_JOURNAL_HH

#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "core/vanguard.hh"
#include "support/error.hh"
#include "uarch/pipeline.hh"

namespace vanguard {

/** One journaled job completion (success or failure). */
struct JournalRecord
{
    char phase = 'S';       ///< 'T' train, 'C' compile, 'S' simulate
    size_t index = 0;       ///< deterministic job index in its phase
    bool ok = true;

    // fail payload
    SimError::Kind kind = SimError::Kind::Internal;
    unsigned attempts = 1;
    std::string message;
    std::string bundlePath;

    // ok simulate payload
    SimStats stats;
};

/** Serialize one record to its journal line (CRC included). */
std::string serializeJournalRecord(const JournalRecord &rec);

/** Parse one line; false for corrupt/CRC-failed/foreign lines. */
bool parseJournalRecord(const std::string &line, JournalRecord *out);

/** Everything a journal file held. */
struct JournalContents
{
    bool ok = false;        ///< header present and readable
    std::string error;      ///< why not, when !ok
    unsigned version = 0;
    std::string specHash;
    size_t totalJobs = 0;

    std::map<size_t, JournalRecord> train;
    std::map<size_t, JournalRecord> compile;
    std::map<size_t, JournalRecord> sim;

    size_t corruptLines = 0; ///< records dropped by CRC/parse
    size_t duplicates = 0;   ///< valid re-records of the same slot

    size_t
    records() const
    {
        return train.size() + compile.size() + sim.size();
    }
};

/**
 * Parse a journal. Throws SimError(Io) for an unknown/future format
 * version; every lesser problem is reported through `ok`/`error`
 * (missing header) or counted (corrupt records) — a half-written
 * journal is normal after a crash, not an error.
 */
JournalContents parseJournal(const std::string &text);

/** Read and parse a journal file (!ok with error if unreadable). */
JournalContents loadJournalFile(const std::string &path);

/**
 * The canonical sweep-spec string whose FNV-1a hash keys a journal:
 * benchmark names+iterations, widths, REF seeds, and the full
 * options vector (via serializeOptionsLines). Any change to these
 * invalidates checkpoints by construction.
 */
std::string sweepSpecCanonical(const std::vector<BenchmarkSpec> &suite,
                               const std::vector<unsigned> &widths,
                               const VanguardOptions &base);

/** 16-hex-digit FNV-1a fingerprint of sweepSpecCanonical. */
std::string sweepSpecHash(const std::vector<BenchmarkSpec> &suite,
                          const std::vector<unsigned> &widths,
                          const VanguardOptions &base);

/**
 * Append-side handle: created fresh (atomic header write, then
 * append) or opened onto an existing journal for resume. append() is
 * mutex-guarded (workers call it concurrently), fsyncs each record,
 * and throws SimError(Io) on write trouble — callers treat that as
 * "this record is not durable" and keep the sweep going.
 */
class JournalWriter
{
  public:
    JournalWriter() = default;
    ~JournalWriter();

    JournalWriter(const JournalWriter &) = delete;
    JournalWriter &operator=(const JournalWriter &) = delete;

    /** Write a fresh header (replacing any old journal), open append. */
    void create(const std::string &path, const std::string &spec_hash,
                size_t total_jobs);

    /** Open an existing journal for appending (resume). */
    void openAppend(const std::string &path);

    bool isOpen() const { return fd_ >= 0; }
    const std::string &path() const { return path_; }

    void append(const JournalRecord &rec);

  private:
    int fd_ = -1;
    std::string path_;
    std::mutex mutex_;
};

} // namespace vanguard

#endif // VANGUARD_CORE_JOURNAL_HH
