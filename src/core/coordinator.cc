/**
 * @file
 * Sweep-fabric implementation: lease bookkeeping, the coordinator
 * service thread, and the remote-worker client loop. See
 * coordinator.hh for the protocol and state machine.
 */

#include "core/coordinator.hh"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <set>
#include <sstream>

#include "support/fault_inject.hh"
#include "support/flight_recorder.hh"
#include "support/logging.hh"
#include "support/shutdown.hh"
#include "support/telemetry.hh"
#include "support/versioned_format.hh"

#if defined(__unix__) || defined(__APPLE__)
#define VANGUARD_FABRIC_POSIX 1
#include <unistd.h>
#endif

namespace vanguard {

namespace {

constexpr unsigned kRemoteHelloVersion = 1;
constexpr unsigned kLeaseVersion = 1;
constexpr unsigned kClaimVersion = 1;
constexpr unsigned kRenewVersion = 1;
constexpr unsigned kRemoteResultVersion = 1;
constexpr unsigned kAckVersion = 1;
constexpr unsigned kDrainVersion = 1;
constexpr unsigned kWorkerConfigVersion = 1; // shared with worker_pool

using Clock = std::chrono::steady_clock;

std::string
claimBody()
{
    return detail::csprintf("vanguard-claim v%u\n", kClaimVersion);
}

std::string
renewBody(uint64_t lease)
{
    return detail::csprintf("vanguard-renew v%u\nlease %llu\n",
                            kRenewVersion,
                            static_cast<unsigned long long>(lease));
}

std::string
ackBody(uint64_t lease)
{
    return detail::csprintf("vanguard-ack v%u\nlease %llu\n",
                            kAckVersion,
                            static_cast<unsigned long long>(lease));
}

std::string
drainBody(bool final_drain)
{
    return detail::csprintf("vanguard-drain v%u\nfinal %d\n",
                            kDrainVersion, final_drain ? 1 : 0);
}

/** Parse "lease <id>" out of a renew/result/ack body (after the
 *  versioned header line). Returns 0 on a malformed body (lease ids
 *  start at 1). */
uint64_t
parseLeaseField(ipc::BodyCursor *cur)
{
    std::string line;
    while (cur->line(&line)) {
        std::istringstream ls(line);
        std::string key;
        ls >> key;
        if (key == "lease") {
            unsigned long long v = 0;
            ls >> v;
            return v;
        }
        if (key == "blob")
            break; // lease line must precede blobs
    }
    return 0;
}

/** splitmix64 finalizer, local copy for connection-backoff jitter. */
uint64_t
mixJitter(uint64_t x)
{
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
}

} // namespace

#ifdef VANGUARD_FABRIC_POSIX

// ---------------------------------------------------------------------
// Coordinator
// ---------------------------------------------------------------------

struct Coordinator::Impl
{
    struct Peer
    {
        int fd = -1;
        ipc::FrameChannel chan;
        std::string addr;       ///< ip:port of the connection
        std::string identity;   ///< "pid@ip" from the hello frame
        bool helloed = false;
        bool claimPending = false;
        bool dead = false;
        uint64_t leaseId = 0;   ///< active lease on this connection
        uint64_t connScope = 0; ///< net.* draw scope
        uint64_t drawCursor = 0;
        Clock::time_point notBefore;  ///< backoff gate for grants
        Clock::time_point lastTx;     ///< for idle heartbeats
    };

    struct Offer
    {
        enum State { Queued, Leased, Done };
        State state = Queued;
        uint64_t id = 0;
        WorkerJob job;
        std::string key;        ///< "phase:slot" (policy bookkeeping)
        unsigned grants = 0;    ///< deliveries so far
        uint64_t leaseId = 0;   ///< current lease (Leased only)
        std::string leasedTo;   ///< identity of the leaseholder
        Clock::time_point leaseExpiry;
        bool discarded = false; ///< drained before any lease
        std::string resultBytes; ///< recorded result (Done)
        bool failSynthesized = false; ///< poison-quarantine failure
        std::string failMessage;
    };

    explicit Impl(const Options &opts) : opts_(opts)
    {
        if (opts_.leaseMs == 0)
            opts_.leaseMs = 1;
        if (opts_.faultPlanSpec.empty() && faultinject::armed())
            opts_.faultPlanSpec =
                faultPlanSpec(faultinject::currentPlan());
        if (faultinject::netArmed())
            netPlanSpec_ = faultPlanSpec(faultinject::currentNetPlan());
        listenFd_ = ipc::listenTcp(opts_.port);
        port_ = ipc::listenPort(listenFd_);
        if (opts_.telemetry != nullptr) {
            // The /progress lease table reads the offer map under
            // mutex_; shutdown() clears the provider before this Impl
            // can die, so the closure never outlives `this`.
            opts_.telemetry->setLeaseTableProvider([this] {
                std::vector<LeaseInfo> out;
                Clock::time_point now = Clock::now();
                std::lock_guard<std::mutex> lock(mutex_);
                for (const auto &kv : offers_) {
                    const Offer &o = kv.second;
                    if (o.state != Offer::Leased)
                        continue;
                    LeaseInfo li;
                    li.id = o.leaseId;
                    li.key = o.key;
                    li.peer = o.leasedTo;
                    li.expiresInMs =
                        std::chrono::duration_cast<
                            std::chrono::milliseconds>(o.leaseExpiry -
                                                       now)
                            .count();
                    out.push_back(std::move(li));
                }
                return out;
            });
        }
        service_ = std::thread([this] { serviceLoop(); });
    }

    ~Impl()
    {
        shutdown();
    }

    void
    bumpCounter(const char *name, uint64_t delta = 1)
    {
        if (opts_.metrics != nullptr)
            opts_.metrics->counter(name).add(delta);
    }

    // ---- execute() side (runner pool threads) ----

    WorkerResult
    execute(WorkerJob job)
    {
        job.bindSpecName();
        const std::string key =
            job.phase + ":" + std::to_string(job.slot);

        std::unique_lock<std::mutex> lock(mutex_);
        throwIfBroken();
        if (draining_ || shutdownRequested())
            throw JobDiscarded();
        uint64_t id = nextOfferId_++;
        {
            Offer &o = offers_[id];
            o.id = id;
            o.job = std::move(job);
            o.job.bindSpecName();
            o.key = key;
            queue_.push_back(id);
        }
        cv_.wait(lock, [&] {
            const Offer &o = offers_[id];
            return broken_ || o.state == Offer::Done || o.discarded;
        });
        throwIfBroken();
        Offer &o = offers_[id];
        if (o.discarded)
            throw JobDiscarded();
        if (o.failSynthesized)
            throw SimError(SimError::Kind::Internal, o.failMessage);

        WorkerResult res;
        std::string err;
        if (!parseWorkerResult(o.resultBytes, &res, &err)) {
            // The bytes were CRC-clean on the wire and parse-checked
            // at receive time; failing here is a coordinator bug.
            throw SimError(SimError::Kind::Internal,
                           "recorded result for " + o.key +
                               " unreadable: " + err);
        }
        lock.unlock();
        for (size_t k = 0; k < FaultPlan::kNumKinds; ++k)
            faultinject::recordRemoteInjections(
                static_cast<SimError::Kind>(k), res.injected[k]);
        if (!res.ok)
            throw SimError(res.kind, res.message);
        return res;
    }

    /** Caller holds mutex_. */
    void
    throwIfBroken()
    {
        if (broken_)
            throw SimError(brokenKind_, brokenReason_);
    }

    void
    markBroken(SimError::Kind kind, std::string reason)
    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (!broken_) {
            broken_ = true;
            brokenKind_ = kind;
            brokenReason_ = std::move(reason);
            flightRecord("error", "fabric.broken", brokenReason_);
        }
        cv_.notify_all();
    }

    // ---- service thread ----

    ipc::SendStatus
    sendToPeer(Peer &p, char type, const std::string &body)
    {
        ipc::SendStatus st =
            ipc::sendFrameNet(p.fd, type, body, p.connScope,
                              &p.drawCursor);
        p.lastTx = Clock::now();
        if (st == ipc::SendStatus::Ok) {
            std::lock_guard<std::mutex> lock(mutex_);
            stats_.frames++;
        }
        if (st == ipc::SendStatus::Ok)
            bumpCounter("engine.net.frames");
        if (st == ipc::SendStatus::Disconnected)
            p.dead = true;
        return st;
    }

    void
    serviceLoop()
    {
        while (!stop_.load(std::memory_order_acquire)) {
            if (shutdownRequested())
                discardQueued();
            acceptPeers();
            pumpPeers();
            {
                std::lock_guard<std::mutex> lock(mutex_);
                expireLeases();
            }
            grantLeases();
            heartbeatIdlePeers();
            reapDeadPeers();
            std::this_thread::sleep_for(
                std::chrono::milliseconds(10));
        }
        // Final drain: every connected peer gets its goodbye, sent
        // injection-free — shutdown is a control path, not a chaos
        // subject (an injected drop here would strand a worker
        // retrying a dead port forever).
        discardQueued();
        std::set<std::string> drained;
        auto drainPeer = [&](Peer &p) {
            if (p.dead)
                return;
            try {
                ipc::writeFrame(p.fd, ipc::kFrameDrain,
                                drainBody(true));
                {
                    std::lock_guard<std::mutex> lock(mutex_);
                    stats_.frames++;
                }
                bumpCounter("engine.net.frames");
                if (!p.identity.empty())
                    drained.insert(p.identity);
            } catch (const SimError &) {
                // Peer gone mid-goodbye; if it reconnects it gets
                // the lame-duck DRAIN below instead.
            }
            p.dead = true;
        };
        for (auto &p : peers_)
            drainPeer(*p);
        reapDeadPeers();

        // Lame duck: a worker knocked off right at sweep end (an
        // injected disconnect, plain bad timing) reconnects with
        // sub-second backoff and must find a goodbye, not a dead
        // port. Keep accepting for a bounded window, answering every
        // HELLO with an immediate final DRAIN, until each identity
        // this sweep ever saw has one (an identity that never returns
        // — a SIGKILLed worker, say — just costs the full window).
        // Window > the worker's worst-case reconnect gap (backoff cap
        // 1000ms + jitter up to half that, plus connect/hello time).
        auto lame_duck_end =
            Clock::now() + std::chrono::milliseconds(2500);
        while (Clock::now() < lame_duck_end) {
            bool all_drained = true;
            {
                std::lock_guard<std::mutex> lock(mutex_);
                for (const std::string &ident : seenIdentities_) {
                    if (drained.find(ident) == drained.end()) {
                        all_drained = false;
                        break;
                    }
                }
            }
            if (all_drained)
                break;
            acceptPeers();
            for (auto &pp : peers_) {
                Peer &p = *pp;
                if (p.dead)
                    continue;
                ipc::Frame f;
                ipc::ReadStatus st;
                try {
                    st = p.chan.read(&f, 0);
                } catch (const SimError &) {
                    p.dead = true;
                    continue;
                }
                if (st == ipc::ReadStatus::Eof) {
                    p.dead = true;
                } else if (st == ipc::ReadStatus::Ok &&
                           f.type == ipc::kFrameHello &&
                           parseHello(p, f.body)) {
                    drainPeer(p);
                }
            }
            reapDeadPeers();
            std::this_thread::sleep_for(
                std::chrono::milliseconds(10));
        }
        for (auto &p : peers_)
            ::close(p->fd);
        peers_.clear();
        if (listenFd_ >= 0) {
            ::close(listenFd_);
            listenFd_ = -1;
        }
    }

    void
    discardQueued()
    {
        std::lock_guard<std::mutex> lock(mutex_);
        bool any = false;
        for (uint64_t id : queue_) {
            Offer &o = offers_[id];
            if (o.state == Offer::Queued && !o.discarded) {
                o.discarded = true;
                any = true;
            }
        }
        queue_.clear();
        if (any)
            cv_.notify_all();
    }

    void
    acceptPeers()
    {
        for (;;) {
            std::string addr;
            int fd;
            try {
                fd = ipc::acceptPeer(listenFd_, 0, &addr);
            } catch (const SimError &e) {
                vg_warn("fabric accept failed: %s", e.detail().c_str());
                return;
            }
            if (fd < 0)
                return;
            uint64_t ord = acceptOrdinal_++;
            uint64_t scope = ipc::netConnScope(ord, 0);
            if (faultinject::netSiteFires("net.accept",
                                          SimError::Kind::Io, scope,
                                          0)) {
                ::close(fd);
                continue;
            }
            auto p = std::make_unique<Peer>();
            p->fd = fd;
            p->chan.reset(fd);
            p->addr = addr;
            p->connScope = scope;
            p->notBefore = Clock::now();
            p->lastTx = Clock::now();
            peers_.push_back(std::move(p));
        }
    }

    void
    pumpPeers()
    {
        for (auto &pp : peers_) {
            Peer &p = *pp;
            if (p.dead)
                continue;
            for (;;) {
                ipc::Frame f;
                ipc::ReadStatus st;
                try {
                    st = p.chan.read(&f, 0); // non-blocking drain
                } catch (const SimError &e) {
                    losePeer(p, "protocol desync (" + e.detail() +
                                    ")");
                    break;
                }
                if (st == ipc::ReadStatus::Timeout)
                    break;
                if (st == ipc::ReadStatus::Eof) {
                    losePeer(p, "disconnected");
                    break;
                }
                {
                    std::lock_guard<std::mutex> lock(mutex_);
                    stats_.frames++;
                }
                bumpCounter("engine.net.frames");
                if (!handleFrame(p, f))
                    break;
            }
        }
    }

    bool
    handleFrame(Peer &p, const ipc::Frame &f)
    {
        switch (f.type) {
        case ipc::kFrameHello:
            return handleHello(p, f.body);
        case ipc::kFrameClaim:
            if (p.helloed)
                p.claimPending = true;
            return true;
        case ipc::kFrameRenew: {
            ipc::BodyCursor cur{f.body};
            std::string line;
            if (!cur.line(&line) ||
                !parseVersionedHeader(line, "vanguard-renew",
                                      kRenewVersion, nullptr))
                return true; // tolerate malformed renew: lease expires
            uint64_t lease = parseLeaseField(&cur);
            std::lock_guard<std::mutex> lock(mutex_);
            auto it = leaseHistory_.find(lease);
            if (it != leaseHistory_.end()) {
                Offer &o = offers_[it->second];
                if (o.state == Offer::Leased && o.leaseId == lease)
                    o.leaseExpiry =
                        Clock::now() +
                        std::chrono::milliseconds(opts_.leaseMs);
            }
            return true;
        }
        case ipc::kFrameResult:
            return handleResult(p, f.body);
        case ipc::kFrameHeartbeat:
            return true;
        case ipc::kFrameStats: {
            // Advisory live stats for the telemetry hub. Identity is
            // receiver-assigned (the HELLO-derived pid@ip), and a
            // malformed body is dropped, never a desync — telemetry
            // cannot cost a peer its connection.
            PeerStats ps;
            if (opts_.telemetry != nullptr && p.helloed &&
                parsePeerStats(f.body, &ps)) {
                ps.identity = p.identity;
                opts_.telemetry->notePeerStats(ps);
            }
            return true;
        }
        default:
            losePeer(p, detail::csprintf(
                            "protocol desync (frame '%c')", f.type));
            return false;
        }
    }

    /** Parse a HELLO body into p.identity ("pid@ip") and p.helloed;
     *  no reply. False (peer untouched) on a malformed header. */
    bool
    parseHello(Peer &p, const std::string &body)
    {
        ipc::BodyCursor cur{body};
        std::string line;
        if (!cur.line(&line) ||
            !parseVersionedHeader(line, "vanguard-remote",
                                  kRemoteHelloVersion, nullptr)) {
            return false;
        }
        long long pid = 0;
        while (cur.line(&line)) {
            std::istringstream ls(line);
            std::string key;
            ls >> key;
            if (key == "pid")
                ls >> pid;
        }
        std::string ip = p.addr.substr(0, p.addr.rfind(':'));
        p.identity = std::to_string(pid) + "@" + ip;
        p.helloed = true;
        return true;
    }

    bool
    handleHello(Peer &p, const std::string &body)
    {
        if (!parseHello(p, body)) {
            losePeer(p, "hello carries no vanguard-remote header");
            return false;
        }
        bool reconnect;
        {
            std::lock_guard<std::mutex> lock(mutex_);
            // Same identity back again = a reconnect (source ports
            // change per connection, so the hello pid is the anchor).
            reconnect = !seenIdentities_.insert(p.identity).second;
            if (reconnect) {
                stats_.reconnects++;
                p.notBefore =
                    Clock::now() +
                    std::chrono::milliseconds(
                        opts_.backoff.delayMs(losses_[p.identity]));
            }
        }
        if (reconnect)
            bumpCounter("engine.net.reconnects");

        std::ostringstream cfg;
        cfg << "vanguard-workerconfig v" << kWorkerConfigVersion
            << "\n";
        cfg << "heartbeat-ms " << opts_.leaseMs << "\n";
        std::string cfg_body = cfg.str();
        ipc::appendBlob(&cfg_body, "fault-plan", opts_.faultPlanSpec);
        ipc::appendBlob(&cfg_body, "net-fault-plan", netPlanSpec_);
        if (sendToPeer(p, ipc::kFrameConfig, cfg_body) ==
            ipc::SendStatus::Disconnected) {
            losePeer(p, "lost during config");
            return false;
        }
        return true;
    }

    bool
    handleResult(Peer &p, const std::string &body)
    {
        ipc::BodyCursor cur{body};
        std::string line;
        if (!cur.line(&line) ||
            !parseVersionedHeader(line, "vanguard-remoteresult",
                                  kRemoteResultVersion, nullptr)) {
            losePeer(p, "result carries no vanguard-remoteresult "
                        "header");
            return false;
        }
        uint64_t lease = 0;
        std::string result_bytes;
        bool have_result = false;
        while (cur.line(&line)) {
            std::istringstream ls(line);
            std::string key;
            ls >> key;
            if (key == "lease") {
                unsigned long long v = 0;
                ls >> v;
                lease = v;
            } else if (key == "blob") {
                std::string name;
                size_t len = 0;
                ls >> name >> len;
                std::string data;
                if (!cur.raw(len, &data)) {
                    losePeer(p, "truncated result blob");
                    return false;
                }
                if (name == "result") {
                    result_bytes = std::move(data);
                    have_result = true;
                }
            }
        }
        if (lease == 0 || !have_result) {
            losePeer(p, "malformed result frame");
            return false;
        }
        // Validate the payload before recording it as the truth
        // duplicates get compared against.
        {
            WorkerResult parsed;
            std::string err;
            if (!parseWorkerResult(result_bytes, &parsed, &err)) {
                losePeer(p, "unreadable worker result (" + err + ")");
                return false;
            }
        }
        if (p.leaseId == lease)
            p.leaseId = 0;

        bool duplicate = false;
        bool divergence = false;
        std::string divergence_msg;
        {
            std::lock_guard<std::mutex> lock(mutex_);
            auto it = leaseHistory_.find(lease);
            if (it == leaseHistory_.end()) {
                vg_warn("fabric: result for unknown lease %llu from "
                        "%s; acknowledged and ignored",
                        static_cast<unsigned long long>(lease),
                        p.identity.c_str());
            } else {
                Offer &o = offers_[it->second];
                if (o.state == Offer::Done) {
                    stats_.duplicateResults++;
                    duplicate = true;
                    // The exactly-once proof: a duplicate completion
                    // must be bit-identical to the recorded one. (A
                    // quarantined offer has no recorded bytes; its
                    // late result is just dropped.)
                    if (!o.resultBytes.empty() &&
                        o.resultBytes != result_bytes) {
                        divergence = true;
                        divergence_msg = detail::csprintf(
                            "duplicate completion of %s diverges from "
                            "the recorded result (%zu vs %zu bytes); "
                            "a worker is computing different bits for "
                            "the same job",
                            o.key.c_str(), result_bytes.size(),
                            o.resultBytes.size());
                    }
                } else {
                    // First completion wins — whether it came from the
                    // current leaseholder or a presumed-dead worker
                    // whose lease already expired and was requeued.
                    if (o.state == Offer::Queued)
                        removeFromQueue(o.id);
                    o.state = Offer::Done;
                    o.leaseId = 0;
                    o.resultBytes = std::move(result_bytes);
                    consecutiveDeaths_.erase(o.key);
                    losses_[p.identity] = 0;
                    consecutiveLosses_ = 0;
                    cv_.notify_all();
                }
            }
        }
        if (duplicate)
            bumpCounter("engine.net.duplicate_results");
        if (divergence) {
            markBroken(SimError::Kind::Divergence, divergence_msg);
            return true;
        }
        if (sendToPeer(p, ipc::kFrameResultAck, ackBody(lease)) ==
            ipc::SendStatus::Disconnected) {
            losePeer(p, "lost during result ack");
            return false;
        }
        return true;
    }

    void
    removeFromQueue(uint64_t id)
    {
        for (auto it = queue_.begin(); it != queue_.end(); ++it) {
            if (*it == id) {
                queue_.erase(it);
                return;
            }
        }
    }

    /** A lease-holding peer vanished or a lease expired: requeue the
     *  offer and run the loss policy. Caller holds mutex_. */
    void
    loseLeaseLocked(Offer &o, const std::string &why)
    {
        const uint64_t lost_lease = o.leaseId;
        o.state = Offer::Queued;
        o.leaseId = 0;
        const std::string identity = o.leasedTo;
        o.leasedTo.clear();

        unsigned deaths = ++consecutiveDeaths_[o.key];
        losses_[identity]++;
        flightRecord("event", "fabric.lease_lost",
                     o.key + " held by " + identity + ": " + why);
        for (auto &pp : peers_) {
            // A still-connected holder of the lost lease becomes
            // grantable again (its eventual result reconciles through
            // leaseHistory_), after the backoff delay.
            if (pp->leaseId == lost_lease)
                pp->leaseId = 0;
            if (pp->identity == identity && !pp->dead)
                pp->notBefore =
                    Clock::now() +
                    std::chrono::milliseconds(
                        opts_.backoff.delayMs(losses_[identity]));
        }
        if (++consecutiveLosses_ > opts_.restartStormLimit &&
            !broken_) {
            broken_ = true;
            brokenKind_ = SimError::Kind::Internal;
            brokenReason_ = detail::csprintf(
                "lease-loss storm: %u consecutive lost leases with no "
                "completed job; breaking the fabric",
                consecutiveLosses_);
            cv_.notify_all();
        }
        if (deaths >= opts_.quarantineDeaths) {
            consecutiveDeaths_.erase(o.key);
            o.state = Offer::Done;
            o.failSynthesized = true;
            o.failMessage = detail::csprintf(
                "poison job quarantined: %s lost %u consecutive "
                "leases (last: %s)",
                o.key.c_str(), deaths, why.c_str());
            flightRecord("error", "fabric.quarantine", o.failMessage);
            cv_.notify_all();
        } else {
            queue_.push_back(o.id);
            vg_warn("fabric: %s lease on %s %s; requeued "
                    "(loss %u of %u)",
                    identity.c_str(), o.key.c_str(), why.c_str(),
                    deaths, opts_.quarantineDeaths);
        }
    }

    void
    losePeer(Peer &p, const std::string &why)
    {
        if (p.dead)
            return;
        p.dead = true;
        if (p.helloed) {
            vg_warn("fabric: worker %s %s", p.identity.c_str(),
                    why.c_str());
            flightRecord("event", "fabric.peer_lost",
                         p.identity + ": " + why);
        }
        std::lock_guard<std::mutex> lock(mutex_);
        if (p.leaseId != 0) {
            auto it = leaseHistory_.find(p.leaseId);
            if (it != leaseHistory_.end()) {
                Offer &o = offers_[it->second];
                if (o.state == Offer::Leased &&
                    o.leaseId == p.leaseId)
                    loseLeaseLocked(o, "holder " + why);
            }
            p.leaseId = 0;
        }
    }

    /** Caller holds mutex_. */
    void
    expireLeases()
    {
        Clock::time_point now = Clock::now();
        for (auto &kv : offers_) {
            Offer &o = kv.second;
            if (o.state != Offer::Leased || o.leaseExpiry > now)
                continue;
            stats_.leasesExpired++;
            expiredToBump_++;
            loseLeaseLocked(o, "expired");
        }
    }

    void
    grantLeases()
    {
        // Counter bumps deferred out of the lock.
        uint64_t granted = 0, regranted = 0, expired = 0;
        struct Grant
        {
            Peer *peer;
            uint64_t lease;
            std::string body;
        };
        std::vector<Grant> grants;
        {
            std::lock_guard<std::mutex> lock(mutex_);
            expired = expiredToBump_;
            expiredToBump_ = 0;
            Clock::time_point now = Clock::now();
            bool stop_granting =
                broken_ || draining_ || shutdownRequested();
            if (!stop_granting) {
                for (auto &pp : peers_) {
                    Peer &p = *pp;
                    if (p.dead || !p.helloed || !p.claimPending ||
                        p.leaseId != 0 || p.notBefore > now)
                        continue;
                    uint64_t id = 0;
                    bool found = false;
                    while (!queue_.empty()) {
                        id = queue_.front();
                        queue_.pop_front();
                        Offer &cand = offers_[id];
                        if (cand.state == Offer::Queued &&
                            !cand.discarded) {
                            found = true;
                            break;
                        }
                    }
                    if (!found)
                        break; // queue empty: idle heartbeats cover it
                    Offer &o = offers_[id];
                    o.job.delivery = deliveries_[o.key]++;
                    o.state = Offer::Leased;
                    o.leaseId = nextLeaseId_++;
                    o.leasedTo = p.identity;
                    o.leaseExpiry =
                        now + std::chrono::milliseconds(opts_.leaseMs);
                    leaseHistory_[o.leaseId] = o.id;
                    o.grants++;
                    stats_.leasesGranted++;
                    granted++;
                    if (o.grants > 1) {
                        stats_.leasesRegranted++;
                        regranted++;
                    }
                    std::ostringstream os;
                    os << "vanguard-lease v" << kLeaseVersion << "\n";
                    os << "lease " << o.leaseId << "\n";
                    os << "lease-ms " << opts_.leaseMs << "\n";
                    std::string body = os.str();
                    ipc::appendBlob(&body, "job",
                                    serializeWorkerJob(o.job));
                    p.claimPending = false;
                    grants.push_back({&p, o.leaseId, std::move(body)});
                }
            }
        }
        bumpCounter("engine.net.leases_granted", granted);
        bumpCounter("engine.net.leases_regranted", regranted);
        bumpCounter("engine.net.leases_expired", expired);
        for (Grant &g : grants) {
            ipc::SendStatus st =
                sendToPeer(*g.peer, ipc::kFrameLease, g.body);
            if (st == ipc::SendStatus::Disconnected) {
                losePeer(*g.peer, "lost during lease grant");
            } else if (st == ipc::SendStatus::Ok ||
                       st == ipc::SendStatus::Dropped) {
                // Dropped: the worker never saw the lease; its claim
                // times out and the lease expiry requeues the job —
                // the injected-duplicate/requeue drill path.
                g.peer->leaseId = g.lease;
            }
        }
    }

    void
    heartbeatIdlePeers()
    {
        unsigned interval = heartbeatIntervalMs(opts_.leaseMs);
        Clock::time_point now = Clock::now();
        for (auto &pp : peers_) {
            Peer &p = *pp;
            if (p.dead || !p.helloed)
                continue;
            if (now - p.lastTx >=
                std::chrono::milliseconds(interval)) {
                // Keeps waiting workers from mistaking an empty queue
                // for a dead coordinator.
                if (sendToPeer(p, ipc::kFrameHeartbeat, "") ==
                    ipc::SendStatus::Disconnected)
                    losePeer(p, "lost during heartbeat");
            }
        }
    }

    void
    reapDeadPeers()
    {
        for (size_t i = 0; i < peers_.size();) {
            if (peers_[i]->dead) {
                ::close(peers_[i]->fd);
                peers_.erase(peers_.begin() + static_cast<long>(i));
            } else {
                ++i;
            }
        }
    }

    void
    shutdown()
    {
        {
            std::lock_guard<std::mutex> lock(mutex_);
            if (shutdownDone_)
                return;
            shutdownDone_ = true;
            draining_ = true;
        }
        // Unhook the lease-table closure before any teardown: an HTTP
        // scrape racing shutdown must not call into a dying Impl.
        if (opts_.telemetry != nullptr)
            opts_.telemetry->setLeaseTableProvider(nullptr);
        stop_.store(true, std::memory_order_release);
        if (service_.joinable())
            service_.join();
        // Wake any straggling execute() callers (their offers were
        // discarded by the service thread's final drain pass).
        cv_.notify_all();
    }

    Options opts_;
    int listenFd_ = -1;
    uint16_t port_ = 0;
    std::string netPlanSpec_;
    std::thread service_;
    std::atomic<bool> stop_{false};

    // Service-thread-private:
    std::vector<std::unique_ptr<Peer>> peers_;
    uint64_t acceptOrdinal_ = 0;

    // Shared (guarded by mutex_):
    mutable std::mutex mutex_;
    std::condition_variable cv_;
    std::map<uint64_t, Offer> offers_;
    std::deque<uint64_t> queue_;
    std::map<uint64_t, uint64_t> leaseHistory_; ///< lease -> offer
    std::map<std::string, uint64_t> deliveries_;
    std::map<std::string, unsigned> consecutiveDeaths_;
    std::map<std::string, unsigned> losses_;
    std::set<std::string> seenIdentities_;
    uint64_t nextOfferId_ = 1;
    uint64_t nextLeaseId_ = 1;
    uint64_t expiredToBump_ = 0;
    unsigned consecutiveLosses_ = 0;
    bool broken_ = false;
    SimError::Kind brokenKind_ = SimError::Kind::Internal;
    std::string brokenReason_;
    bool draining_ = false;
    bool shutdownDone_ = false;
    Stats stats_;
};

bool
Coordinator::supported()
{
    return ipc::ipcSupported();
}

Coordinator::Coordinator(const Options &opts)
    : impl_(new Impl(opts))
{
}

Coordinator::~Coordinator() = default;

uint16_t
Coordinator::port() const
{
    return impl_->port_;
}

WorkerResult
Coordinator::execute(WorkerJob job)
{
    return impl_->execute(std::move(job));
}

void
Coordinator::shutdown()
{
    impl_->shutdown();
}

Coordinator::Stats
Coordinator::stats() const
{
    std::lock_guard<std::mutex> lock(impl_->mutex_);
    return impl_->stats_;
}

// ---------------------------------------------------------------------
// Remote worker
// ---------------------------------------------------------------------

namespace {

/** Sleep `ms` in small steps, bailing early on the shutdown latch.
 *  Returns false if shutdown was requested. */
bool
interruptibleSleep(unsigned ms)
{
    unsigned slept = 0;
    while (slept < ms) {
        if (shutdownRequested())
            return false;
        unsigned step = ms - slept < 25 ? ms - slept : 25;
        std::this_thread::sleep_for(std::chrono::milliseconds(step));
        slept += step;
    }
    return !shutdownRequested();
}

enum class ConnOutcome
{
    Drained,    ///< coordinator sent a final DRAIN: exit cleanly
    Lost,       ///< connection lost: reconnect with backoff
    Shutdown,   ///< local SIGINT/SIGTERM latch: exit cleanly
    Acked,      ///< (serveLease only) result recorded: claim again
};

struct RemoteConn
{
    int fd;
    ipc::FrameChannel chan;
    uint64_t connScope;
    uint64_t drawCursor = 0;
    std::mutex writeMutex;
    unsigned leaseMs = 10000;

    ipc::SendStatus
    send(char type, const std::string &body)
    {
        std::lock_guard<std::mutex> lock(writeMutex);
        return ipc::sendFrameNet(fd, type, body, connScope,
                                 &drawCursor);
    }

    /**
     * Advisory STATS push, deliberately injection-free: telemetry is
     * not a chaos subject, and routing it through sendFrameNet would
     * shift every existing net-fault draw sequence (plans key on the
     * frame ordinal). Failures are swallowed — the read side will
     * notice a dead coordinator on its own.
     */
    void
    sendStatsAdvisory(JobBodyRunner &runner, const char *phase,
                      uint64_t lease)
    {
        PeerStats ps;
        ps.pid = static_cast<uint64_t>(::getpid());
        ps.phase = phase;
        JobBodyRunner::BodyStats bs = runner.bodyStats();
        ps.jobsDone = bs.jobsDone;
        ps.instsRetired = bs.instsRetired;
        ps.cacheHits = bs.cacheHits;
        ps.cacheMisses = bs.cacheMisses;
        if (lease != 0)
            ps.lease = std::to_string(lease);
        std::lock_guard<std::mutex> lock(writeMutex);
        try {
            ipc::writeFrame(fd, ipc::kFrameStats,
                            serializePeerStats(ps));
        } catch (const SimError &) {
            // Coordinator gone; the main loop will see it.
        }
    }

    /**
     * Read one frame in shutdown-aware slices. `silence_ms` bounds
     * how long we tolerate a totally quiet coordinator before
     * declaring it partitioned (Timeout).
     */
    ipc::ReadStatus
    readSliced(ipc::Frame *f, unsigned silence_ms)
    {
        Clock::time_point deadline =
            Clock::now() + std::chrono::milliseconds(silence_ms);
        for (;;) {
            if (shutdownRequested())
                return ipc::ReadStatus::Timeout;
            int left = static_cast<int>(
                std::chrono::duration_cast<std::chrono::milliseconds>(
                    deadline - Clock::now())
                    .count());
            if (left <= 0)
                return ipc::ReadStatus::Timeout;
            int slice = left < 200 ? left : 200;
            ipc::ReadStatus st = chan.read(f, slice);
            if (st != ipc::ReadStatus::Timeout)
                return st;
        }
    }
};

/** Handle the coordinator's CONFIG frame: lease duration and the two
 *  forwarded fault plans. */
bool
applyRemoteConfig(RemoteConn &conn, const std::string &body)
{
    ipc::BodyCursor cur{body};
    std::string line;
    if (!cur.line(&line) ||
        !parseVersionedHeader(line, "vanguard-workerconfig",
                              kWorkerConfigVersion, nullptr))
        return false;
    std::string plan_spec, net_plan_spec;
    while (cur.line(&line)) {
        std::istringstream ls(line);
        std::string key;
        ls >> key;
        if (key == "heartbeat-ms") {
            ls >> conn.leaseMs;
            if (conn.leaseMs == 0)
                conn.leaseMs = 1;
        } else if (key == "blob") {
            std::string name;
            size_t len = 0;
            ls >> name >> len;
            std::string data;
            if (!cur.raw(len, &data))
                return false;
            if (name == "fault-plan")
                plan_spec = std::move(data);
            else if (name == "net-fault-plan")
                net_plan_spec = std::move(data);
        }
    }
    try {
        if (plan_spec.empty())
            faultinject::disarm();
        else
            faultinject::arm(parseFaultPlan(plan_spec));
        if (net_plan_spec.empty())
            faultinject::disarmNet();
        else
            faultinject::armNet(parseFaultPlan(net_plan_spec));
    } catch (const SimError &) {
        return false;
    }
    return true;
}

/** Execute one leased job: renew from a side thread while the body
 *  runs, then deliver the result until acknowledged. */
ConnOutcome
serveLease(RemoteConn &conn, JobBodyRunner &runner, uint64_t lease,
           const WorkerJob &job)
{
    std::atomic<bool> done{false};
    std::atomic<bool> conn_lost{false};
    std::thread renew([&] {
        unsigned interval = heartbeatIntervalMs(conn.leaseMs);
        while (!done.load(std::memory_order_acquire)) {
            unsigned slept = 0;
            while (slept < interval &&
                   !done.load(std::memory_order_acquire)) {
                unsigned step =
                    interval - slept < 25 ? interval - slept : 25;
                std::this_thread::sleep_for(
                    std::chrono::milliseconds(step));
                slept += step;
            }
            if (done.load(std::memory_order_acquire))
                break;
            if (conn.send(ipc::kFrameRenew, renewBody(lease)) ==
                ipc::SendStatus::Disconnected)
                conn_lost.store(true, std::memory_order_release);
            else
                conn.sendStatsAdvisory(runner, job.phase.c_str(),
                                       lease);
        }
    });

    WorkerResult res = runner.run(job);

    done.store(true, std::memory_order_release);
    renew.join();
    if (conn_lost.load(std::memory_order_acquire))
        return ConnOutcome::Lost;

    std::ostringstream os;
    os << "vanguard-remoteresult v" << kRemoteResultVersion << "\n";
    os << "lease " << lease << "\n";
    std::string body = os.str();
    ipc::appendBlob(&body, "result", serializeWorkerResult(res));

    // At-least-once delivery: retransmit until the coordinator ACKs.
    // A lost ACK therefore produces a duplicate completion on the
    // coordinator, which reconciles it by byte-comparison. On
    // connection loss the unACKed result is simply discarded —
    // re-execution after the re-grant is idempotent.
    for (unsigned attempt = 0; attempt < 5; ++attempt) {
        ipc::SendStatus st = conn.send(ipc::kFrameResult, body);
        if (st == ipc::SendStatus::Disconnected)
            return ConnOutcome::Lost;
        // Await the ACK (a Dropped send just looks like a lost ACK).
        Clock::time_point deadline =
            Clock::now() + std::chrono::milliseconds(conn.leaseMs);
        while (Clock::now() < deadline) {
            ipc::Frame f;
            ipc::ReadStatus rst;
            try {
                rst = conn.readSliced(
                    &f, static_cast<unsigned>(
                            std::chrono::duration_cast<
                                std::chrono::milliseconds>(
                                deadline - Clock::now())
                                .count() +
                            1));
            } catch (const SimError &) {
                return ConnOutcome::Lost;
            }
            if (rst == ipc::ReadStatus::Eof)
                return ConnOutcome::Lost;
            if (rst == ipc::ReadStatus::Timeout)
                break; // retransmit
            if (f.type == ipc::kFrameResultAck) {
                ipc::BodyCursor cur{f.body};
                std::string line;
                if (cur.line(&line) &&
                    parseVersionedHeader(line, "vanguard-ack",
                                         kAckVersion, nullptr) &&
                    parseLeaseField(&cur) == lease)
                    return ConnOutcome::Acked;
                continue; // stale ack for an older lease
            }
            if (f.type == ipc::kFrameDrain) {
                // The coordinator only drains once the sweep has
                // every result it needs; if ours mattered it was
                // recorded (possibly via a re-grant). Exit cleanly.
                return ConnOutcome::Drained;
            }
            // Heartbeats and anything else: keep waiting.
        }
        if (shutdownRequested())
            return ConnOutcome::Shutdown;
    }
    return ConnOutcome::Lost; // coordinator unresponsive: reconnect
}

ConnOutcome
serveConnection(RemoteConn &conn, JobBodyRunner &runner)
{
    std::ostringstream hello;
    hello << "vanguard-remote v" << kRemoteHelloVersion << "\n";
    hello << "pid " << ::getpid() << "\n";
    if (conn.send(ipc::kFrameHello, hello.str()) !=
        ipc::SendStatus::Ok)
        return ConnOutcome::Lost;

    // Config must arrive before any claim.
    for (;;) {
        ipc::Frame f;
        ipc::ReadStatus st;
        try {
            st = conn.readSliced(&f, 10000);
        } catch (const SimError &) {
            return ConnOutcome::Lost;
        }
        if (shutdownRequested())
            return ConnOutcome::Shutdown;
        if (st != ipc::ReadStatus::Ok)
            return ConnOutcome::Lost;
        if (f.type == ipc::kFrameConfig) {
            if (!applyRemoteConfig(conn, f.body))
                return ConnOutcome::Lost;
            break;
        }
        if (f.type == ipc::kFrameDrain)
            return ConnOutcome::Drained;
    }

    // Claim/execute/report until drained.
    for (;;) {
        if (shutdownRequested())
            return ConnOutcome::Shutdown;
        if (conn.send(ipc::kFrameClaim, claimBody()) ==
            ipc::SendStatus::Disconnected)
            return ConnOutcome::Lost;
        conn.sendStatsAdvisory(runner, "claim", 0);

        // Await the lease. Re-claim if the coordinator stays quiet
        // for a lease period (a dropped CLAIM or LEASE frame), and
        // declare it partitioned after two with *no* traffic at all.
        Clock::time_point claim_sent = Clock::now();
        bool leased = false;
        uint64_t lease = 0;
        WorkerJob job;
        while (!leased) {
            ipc::Frame f;
            ipc::ReadStatus st;
            try {
                st = conn.readSliced(&f, 2 * conn.leaseMs);
            } catch (const SimError &) {
                return ConnOutcome::Lost;
            }
            if (shutdownRequested())
                return ConnOutcome::Shutdown;
            if (st == ipc::ReadStatus::Eof)
                return ConnOutcome::Lost;
            if (st == ipc::ReadStatus::Timeout)
                return ConnOutcome::Lost; // total silence: reconnect
            if (f.type == ipc::kFrameDrain) {
                ipc::BodyCursor cur{f.body};
                std::string line;
                cur.line(&line);
                bool final_drain = false;
                while (cur.line(&line)) {
                    std::istringstream ls(line);
                    std::string key;
                    int v = 0;
                    ls >> key >> v;
                    if (key == "final")
                        final_drain = v != 0;
                }
                if (final_drain)
                    return ConnOutcome::Drained;
                continue; // soft drain: stay connected, stop claiming
            }
            if (f.type == ipc::kFrameLease) {
                ipc::BodyCursor cur{f.body};
                std::string line;
                if (!cur.line(&line) ||
                    !parseVersionedHeader(line, "vanguard-lease",
                                          kLeaseVersion, nullptr))
                    return ConnOutcome::Lost;
                std::string job_bytes;
                while (cur.line(&line)) {
                    std::istringstream ls(line);
                    std::string key;
                    ls >> key;
                    if (key == "lease") {
                        unsigned long long v = 0;
                        ls >> v;
                        lease = v;
                    } else if (key == "lease-ms") {
                        ls >> conn.leaseMs;
                        if (conn.leaseMs == 0)
                            conn.leaseMs = 1;
                    } else if (key == "blob") {
                        std::string name;
                        size_t len = 0;
                        ls >> name >> len;
                        std::string data;
                        if (!cur.raw(len, &data))
                            return ConnOutcome::Lost;
                        if (name == "job")
                            job_bytes = std::move(data);
                    }
                }
                std::string err;
                if (lease == 0 ||
                    !parseWorkerJob(job_bytes, &job, &err))
                    return ConnOutcome::Lost;
                leased = true;
                continue;
            }
            // Heartbeats (idle queue) and strays: keep waiting, but
            // nudge with a fresh claim if a lease period passed (our
            // CLAIM may have been dropped on the wire).
            if (Clock::now() - claim_sent >
                std::chrono::milliseconds(conn.leaseMs)) {
                if (conn.send(ipc::kFrameClaim, claimBody()) ==
                    ipc::SendStatus::Disconnected)
                    return ConnOutcome::Lost;
                conn.sendStatsAdvisory(runner, "claim", 0);
                claim_sent = Clock::now();
            }
        }

        ConnOutcome out = serveLease(conn, runner, lease, job);
        if (out != ConnOutcome::Acked)
            return out;
        // Result acknowledged: claim the next job.
    }
}

} // namespace

int
runRemoteWorker(const std::string &host, uint16_t port)
{
    // One body runner for the whole process: the artifact cache
    // survives reconnects, so a flapping network doesn't force
    // retrain/recompile of what this worker already built.
    JobBodyRunner runner;
    faultinject::maybeArmNetFromEnv();

    const uint64_t pid = static_cast<uint64_t>(::getpid());
    uint64_t attempt = 0;
    unsigned consecutive_failures = 0;
    BackoffPolicy backoff;
    bool warned = false;

    for (;;) {
        if (shutdownRequested())
            return 0;
        unsigned delay = backoff.delayMs(consecutive_failures);
        if (delay != 0) {
            // Jitter: a fleet of workers restarted together must not
            // hammer a recovering coordinator in lockstep.
            delay += static_cast<unsigned>(mixJitter(pid ^ attempt) %
                                           (delay / 2 + 1));
            if (!interruptibleSleep(delay))
                return 0;
        }
        attempt++;

        std::string err;
        int fd = ipc::connectTcp(host, port, &err);
        if (fd < 0) {
            consecutive_failures++;
            if (!warned || consecutive_failures % 32 == 0) {
                vg_warn("remote worker: %s (attempt %llu); retrying",
                        err.c_str(),
                        static_cast<unsigned long long>(attempt));
                warned = true;
            }
            continue;
        }

        RemoteConn conn{fd, ipc::FrameChannel(fd),
                        ipc::netConnScope(pid, attempt)};
        ConnOutcome out;
        try {
            out = serveConnection(conn, runner);
        } catch (const SimError &e) {
            vg_warn("remote worker: connection error: %s",
                    e.detail().c_str());
            out = ConnOutcome::Lost;
        }
        ::close(fd);
        if (out == ConnOutcome::Drained) {
            vg_inform("remote worker: drained by coordinator; exiting");
            return 0;
        }
        if (out == ConnOutcome::Shutdown)
            return 0;
        consecutive_failures =
            consecutive_failures == 0 ? 1 : consecutive_failures + 1;
    }
}

#else // !VANGUARD_FABRIC_POSIX

struct Coordinator::Impl
{
};

bool
Coordinator::supported()
{
    return false;
}

Coordinator::Coordinator(const Options &)
{
    vg_throw(Config,
             "the sweep fabric is not supported on this platform");
}

Coordinator::~Coordinator() = default;

uint16_t
Coordinator::port() const
{
    return 0;
}

WorkerResult
Coordinator::execute(WorkerJob)
{
    vg_throw(Config,
             "the sweep fabric is not supported on this platform");
}

void Coordinator::shutdown() {}

Coordinator::Stats
Coordinator::stats() const
{
    return {};
}

int
runRemoteWorker(const std::string &, uint16_t)
{
    return 2;
}

#endif // VANGUARD_FABRIC_POSIX

} // namespace vanguard
