#include "core/vanguard.hh"

#include <algorithm>
#include <memory>

#include "bpred/factory.hh"
#include "exec/interpreter.hh"
#include "compiler/hoist.hh"
#include "compiler/layout.hh"
#include "compiler/scheduler.hh"
#include "profile/profiler.hh"
#include "support/logging.hh"
#include "support/stats.hh"
#include "support/tracing.hh"

namespace vanguard {

MachineConfig
VanguardOptions::machine() const
{
    MachineConfig cfg = MachineConfig::widthVariant(width);
    cfg.predictor = predictor;
    cfg.shadowCommit = shadowCommit;
    cfg.dbbEntries = dbbEntries;
    cfg.l1i.sizeKB = l1iSizeKB;
    cfg.icacheNextLinePrefetch = icachePrefetch; // wire prefetch knob
    return cfg;
}

TrainArtifacts
trainBenchmark(const BenchmarkSpec &spec, const VanguardOptions &opts)
{
    TrainArtifacts out;
    BuiltKernel train = buildKernel(spec, kTrainSeed);
    auto predictor = makePredictor(opts.predictor, kTrainSeed);
    ProfileOptions popts;
    popts.maxInsts = opts.profileMaxInsts;
    {
        // Ambient tracer (set by the engine around each job) gets a
        // sub-span for the expensive inner step; null-safe no-op.
        TraceSpan span(currentTracer(), "train.profile");
        out.profile =
            profileFunction(train.fn, *train.mem, *predictor, popts);
    }
    out.selected = selectBranches(train.fn, out.profile,
                                  opts.selection);
    return out;
}

TrainArtifacts
trainFromProfile(const BenchmarkSpec &spec, BranchProfile profile,
                 const VanguardOptions &opts)
{
    TrainArtifacts out;
    out.profile = std::move(profile);
    BuiltKernel shape = buildKernel(spec, kTrainSeed);
    out.selected =
        selectBranches(shape.fn, out.profile, opts.selection);
    return out;
}

CompiledConfig
compileConfig(const BenchmarkSpec &spec, const TrainArtifacts &train,
              bool decomposed, const VanguardOptions &opts,
              DecomposeStats *dstats_out)
{
    TraceSpan span(currentTracer(), "compile.config",
                   Tracer::args({{"decomposed",
                                  decomposed ? "1" : "0"}}));
    CompiledConfig out;
    out.decomposed = decomposed;

    // Any seed yields the same code structure; kTrainSeed by
    // convention (the REF inputs differ only in the memory image and
    // one PRNG-seed immediate, which does not affect timing shape).
    BuiltKernel built = buildKernel(spec, kTrainSeed);
    Function &fn = built.fn;

    if (opts.applySuperblock)
        hoistAboveBiasedBranches(fn, train.profile, opts.superblock);

    DecomposeStats dstats;
    if (decomposed) {
        dstats = decomposeBranches(fn, train.selected, opts.decompose);
        if (!dstats.hoistedIds.empty()) {
            InstId max_id = *std::max_element(
                dstats.hoistedIds.begin(), dstats.hoistedIds.end());
            out.hoistedMask.assign(max_id + 1, false);
            for (InstId id : dstats.hoistedIds)
                out.hoistedMask[id] = true;
        }
    }
    if (dstats_out != nullptr)
        *dstats_out = dstats;

    ScheduleOptions sched;
    sched.width = opts.width;
    MachineConfig mc = opts.machine();
    sched.memPorts = mc.memPorts;
    sched.intPorts = mc.intPorts;
    sched.fpPorts = mc.fpPorts;
    scheduleFunction(fn, sched);

    out.prog = linearize(fn);
    out.staticInsts = out.prog.size();
    // Decode once per compile artifact; every REF-seed run of this
    // configuration shares the flat form read-only.
    out.decoded = std::make_shared<const DecodedProgram>(
        DecodedProgram::decode(out.prog, opts.machine().l1i.lineBytes));
    return out;
}

SimStats
simulateConfig(const BenchmarkSpec &spec, const CompiledConfig &config,
               const VanguardOptions &opts, uint64_t ref_seed,
               bool collect_branch_stalls)
{
    BuiltKernel ref = buildKernel(spec, ref_seed);
    // Note: code immediates were generated with kTrainSeed; only the
    // memory image (patterns/data) comes from the REF build, which is
    // exactly the SPEC train-vs-ref divergence we want. To keep the
    // in-register noise realization seed-specific too, we re-lay the
    // REF-built function only if it differs in size (it never does).
    auto predictor = makePredictor(opts.predictor, ref_seed);

    SimOptions sopts;
    sopts.maxInsts = opts.simMaxInsts;
    sopts.cycleBudget = opts.simCycleBudget;
    sopts.progressWindow = opts.simProgressWindow;
    sopts.collectBranchStalls = collect_branch_stalls;
    sopts.noThreadedDispatch = opts.noThreadedDispatch;
    if (!config.hoistedMask.empty())
        sopts.hoistedMask = &config.hoistedMask;

    // Lockstep oracle: a golden functional run of the *original*
    // kernel (the transformation contract: any compiled configuration
    // retires the same store stream and final arch registers). The
    // timing run below is then checked against it online.
    std::unique_ptr<LockstepChecker> checker;
    if (opts.lockstep) {
        TraceSpan span(currentTracer(), "sim.golden");
        Memory golden_mem = *ref.mem; // timing run mutates *ref.mem
        FastInterpreter oracle(ref.fn, golden_mem);
        oracle.recordStores(true);
        RunResult gr = oracle.run(opts.simMaxInsts * 2);
        if (gr.status == RunStatus::Fault) {
            vg_throw(Fault,
                     "lockstep golden run faulted at inst %u",
                     gr.faultingInst);
        }
        LockstepOracle golden;
        golden.stores = oracle.storeLog();
        golden.halted = gr.status == RunStatus::Halted;
        for (unsigned r = 0; r < kNumArchRegs; ++r)
            golden.archRegs[r] = oracle.reg(static_cast<RegId>(r));
        checker = std::make_unique<LockstepChecker>(std::move(golden));
        sopts.lockstep = checker.get();
    }

    std::vector<bool> outcomes;
    bool needs_oracle = opts.predictor.rfind("ideal:", 0) == 0;
    if (needs_oracle && config.decomposed) {
        TraceSpan span(currentTracer(), "sim.prerecord");
        outcomes = prerecordPredictOutcomes(config.prog, *ref.mem,
                                            opts.simMaxInsts * 2);
        sopts.predictOutcomes = &outcomes;
    }

    TraceSpan span(currentTracer(), "sim.timing");
    if (config.decoded != nullptr) {
        return simulateWithDecoded(config.prog, *config.decoded,
                                   *ref.mem, *predictor, opts.machine(),
                                   sopts);
    }
    return simulate(config.prog, *ref.mem, *predictor, opts.machine(),
                    sopts);
}

std::vector<BatchLaneResult>
simulateConfigBatch(const BenchmarkSpec &spec,
                    const CompiledConfig &config,
                    const VanguardOptions &opts,
                    const std::vector<uint64_t> &ref_seeds,
                    bool collect_branch_stalls)
{
    vg_assert(!opts.lockstep,
              "lockstep runs hold per-run golden state and cannot "
              "share a batched loop; run them solo");
    vg_assert(config.decoded != nullptr,
              "batched simulation needs the pre-decoded program");

    // Per-lane state mirrors simulateConfig's per-seed setup exactly:
    // the REF memory image, a seed-specific predictor, and (for oracle
    // predictors on decomposed code) the pre-recorded PREDICT outcome
    // stream. The kernels/predictors/outcomes own the storage the
    // lane pointers reference for the duration of the batch.
    const size_t n = ref_seeds.size();
    bool needs_oracle = opts.predictor.rfind("ideal:", 0) == 0;
    std::vector<BuiltKernel> refs;
    refs.reserve(n);
    std::vector<std::unique_ptr<DirectionPredictor>> predictors;
    predictors.reserve(n);
    std::vector<std::vector<bool>> outcomes(n);
    std::vector<BatchLaneInput> lanes(n);
    for (size_t i = 0; i < n; ++i) {
        refs.push_back(buildKernel(spec, ref_seeds[i]));
        predictors.push_back(
            makePredictor(opts.predictor, ref_seeds[i]));
        lanes[i].mem = refs[i].mem.get();
        lanes[i].predictor = predictors[i].get();
        if (needs_oracle && config.decomposed) {
            TraceSpan span(currentTracer(), "sim.prerecord");
            outcomes[i] = prerecordPredictOutcomes(
                config.prog, *refs[i].mem, opts.simMaxInsts * 2);
            lanes[i].predictOutcomes = &outcomes[i];
        }
    }

    SimOptions sopts;
    sopts.maxInsts = opts.simMaxInsts;
    sopts.cycleBudget = opts.simCycleBudget;
    sopts.progressWindow = opts.simProgressWindow;
    sopts.collectBranchStalls = collect_branch_stalls;
    sopts.noThreadedDispatch = opts.noThreadedDispatch;
    if (!config.hoistedMask.empty())
        sopts.hoistedMask = &config.hoistedMask;

    TraceSpan span(currentTracer(), "sim.batch",
                   Tracer::args({{"lanes", std::to_string(n)}}));
    return simulateBatch(config.prog, *config.decoded, lanes,
                         opts.machine(), sopts);
}

namespace {

/** Static loads per hot basic block of the untransformed kernel. */
double
avgLoadsPerBlock(const Function &fn, BlockId first_cold)
{
    uint64_t loads = 0;
    uint64_t blocks = 0;
    for (const auto &bb : fn.blocks()) {
        if (first_cold != kNoBlock && bb.id >= first_cold)
            continue;
        ++blocks;
        for (const auto &inst : bb.insts)
            if (inst.isLoad())
                ++loads;
    }
    return blocks == 0
        ? 0.0
        : static_cast<double>(loads) / static_cast<double>(blocks);
}

/** Mean hoistable fraction over the successors of selected branches. */
double
avgHoistableFraction(const Function &fn,
                     const std::vector<InstId> &selected)
{
    std::vector<double> fracs;
    for (InstId id : selected) {
        for (const auto &bb : fn.blocks()) {
            if (bb.hasTerminator() && bb.terminator().id == id &&
                bb.terminator().op == Opcode::BR) {
                const Instruction &br = bb.terminator();
                fracs.push_back(
                    hoistableFraction(fn.block(br.takenTarget)));
                fracs.push_back(
                    hoistableFraction(fn.block(br.fallTarget)));
                break;
            }
        }
    }
    return mean(fracs) * 100.0;
}

} // namespace

BenchmarkArtifacts
compileBenchmark(const BenchmarkSpec &spec, TrainArtifacts train,
                 const VanguardOptions &opts)
{
    BenchmarkArtifacts art;
    art.base = compileConfig(spec, train, false, opts);
    art.exp =
        compileConfig(spec, train, opts.applyDecomposition, opts);

    // Static-shape metrics from the untransformed kernel.
    BuiltKernel pristine = buildKernel(spec, kTrainSeed);
    art.alpbb = avgLoadsPerBlock(pristine.fn, pristine.firstColdBlock);
    art.phi = avgHoistableFraction(pristine.fn, train.selected);

    art.train = std::move(train);
    return art;
}

BenchmarkArtifacts
prepareBenchmark(const BenchmarkSpec &spec, const VanguardOptions &opts)
{
    return compileBenchmark(spec, trainBenchmark(spec, opts), opts);
}

BenchmarkOutcome
assembleOutcome(const BenchmarkSpec &spec, const BenchmarkArtifacts &art,
                SimStats base_stats, SimStats exp_stats)
{
    BenchmarkOutcome out;
    out.name = spec.name;
    out.selectedBranches = art.train.selected.size();
    out.base = std::move(base_stats);
    out.exp = std::move(exp_stats);

    out.speedupPct =
        speedupPercent(speedupRatio(out.base.cycles, out.exp.cycles));

    out.baseStaticInsts = art.base.staticInsts;
    out.expStaticInsts = art.exp.staticInsts;
    out.piscs = art.base.staticInsts == 0
        ? 0.0
        : 100.0 *
              (static_cast<double>(art.exp.staticInsts) -
               static_cast<double>(art.base.staticInsts)) /
              static_cast<double>(art.base.staticInsts);

    out.pbc =
        convertedBranchFraction(art.train.profile, art.train.selected);
    out.mppkiBase = out.base.mppki();
    out.pdih = out.exp.dynamicInsts == 0
        ? 0.0
        : 100.0 * static_cast<double>(out.exp.speculativeExecs) /
              static_cast<double>(out.exp.dynamicInsts);
    out.issuedIncreasePct = out.base.issued == 0
        ? 0.0
        : 100.0 *
              (static_cast<double>(out.exp.issued) -
               static_cast<double>(out.base.issued)) /
              static_cast<double>(out.base.issued);

    // ASPCB: baseline issue-stall per selected branch.
    uint64_t stall_cycles = 0;
    uint64_t stall_events = 0;
    for (InstId id : art.train.selected) {
        auto it = out.base.branchStalls.find(id);
        if (it != out.base.branchStalls.end()) {
            stall_cycles += it->second.first;
            stall_events += it->second.second;
        }
    }
    out.aspcb = stall_events == 0
        ? 0.0
        : static_cast<double>(stall_cycles) /
              static_cast<double>(stall_events);

    out.alpbb = art.alpbb;
    out.phi = art.phi;
    return out;
}

BenchmarkOutcome
evaluateWithArtifacts(const BenchmarkSpec &spec,
                      const BenchmarkArtifacts &art,
                      const VanguardOptions &opts, uint64_t ref_seed)
{
    SimStats base = simulateConfig(spec, art.base, opts, ref_seed,
                                   /*collect_branch_stalls=*/true);
    SimStats exp = simulateConfig(spec, art.exp, opts, ref_seed);
    return assembleOutcome(spec, art, std::move(base), std::move(exp));
}

BenchmarkOutcome
evaluateBenchmark(const BenchmarkSpec &spec, const VanguardOptions &opts,
                  uint64_t ref_seed)
{
    BenchmarkArtifacts art = prepareBenchmark(spec, opts);
    return evaluateWithArtifacts(spec, art, opts, ref_seed);
}

SeedSummary
evaluateBenchmarkAllRefs(const BenchmarkSpec &spec,
                         const VanguardOptions &opts)
{
    SeedSummary summary;
    summary.name = spec.name;

    // Train and compile exactly once; CompiledConfig is
    // seed-independent, so only the simulations differ per REF input.
    BenchmarkArtifacts art = prepareBenchmark(spec, opts);

    std::vector<double> ratios;
    double best = -1e9;
    for (size_t s = 0; s < kNumRefSeeds; ++s) {
        BenchmarkOutcome outcome =
            evaluateWithArtifacts(spec, art, opts, kRefSeeds[s]);
        ratios.push_back(1.0 + outcome.speedupPct / 100.0);
        best = std::max(best, outcome.speedupPct);
        summary.perSeed.push_back(std::move(outcome));
    }
    summary.meanSpeedupPct = (geomean(ratios) - 1.0) * 100.0;
    summary.bestSpeedupPct = best;
    return summary;
}

} // namespace vanguard
