/**
 * @file
 * Process-isolated worker pool: supervised out-of-process execution
 * of experiment-job bodies.
 *
 * The in-process pool (support/thread_pool.hh) can only contain
 * failures that unwind as C++ exceptions; a SIGSEGV, OOM kill, or
 * runaway allocation in one (benchmark × width × config × seed) job
 * takes the whole sweep down. This pool moves job *bodies* into N
 * long-lived worker processes — re-execs of `vanguard_cli --worker
 * <fd>` speaking the `vanguard-worker v1` frame protocol of
 * support/ipc.hh — while every piece of sweep bookkeeping (journal,
 * metrics merges, result slots, retry policy, failure tables) stays in
 * the supervisor. That split is what makes sweep output byte-identical
 * between isolation modes: the supervisor runs the same code over the
 * same slot-indexed results either way; only where the body computed
 * is different.
 *
 * Job bodies cross the boundary fully self-contained (complete
 * BenchmarkSpec, exact hexfloat-encoded options, and — for simulate
 * jobs — the serialized TRAIN profile), so workers never touch the
 * filesystem and any single job is replayable by construction. Train
 * jobs return the serialized profile (the supervisor re-derives
 * selection via trainFromProfile, proven bit-identical by the resume
 * path); simulate jobs return SimStats through the journal's
 * CRC-guarded record codec, the same bytes a resumed sweep replays.
 *
 * Supervision policy (all owned here, not by the runner):
 *   - heartbeats: workers beat every deadline/4 while a job runs; a
 *     silent worker past the deadline is SIGKILLed and the in-flight
 *     job fails with SimError(Hang), mirroring the in-process
 *     watchdog taxonomy;
 *   - exit triage: signal death, nonzero exit, and protocol desync
 *     each map into the SimError taxonomy with the worker's fate in
 *     the message;
 *   - restart with exponential backoff (BackoffPolicy below), plus a
 *     restart-storm circuit breaker: too many consecutive worker
 *     losses with no completed job in between breaks the pool rather
 *     than melting the host;
 *   - poison-job quarantine: a job that kills kQuarantineDeaths
 *     consecutive workers is recorded as a non-transient root-cause
 *     failure (the runner's ordinary bundle path then writes its
 *     replay bundle) instead of being retried forever;
 *   - optional setrlimit() address-space / CPU caps applied between
 *     fork and exec;
 *   - graceful drain: shutdown() sends each live worker a QUIT frame
 *     and exactly one SIGTERM, reaps with a bounded deadline, and
 *     SIGKILLs stragglers — no zombie outlives the pool.
 *
 * POSIX-only (fork/exec/waitpid); WorkerPool::supported() gates it and
 * the CLI turns unsupported platforms into exit 2.
 */

#ifndef VANGUARD_CORE_WORKER_POOL_HH
#define VANGUARD_CORE_WORKER_POOL_HH

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <vector>

#include "core/vanguard.hh"
#include "support/fault_inject.hh"
#include "support/ipc.hh"
#include "support/metrics.hh"
#include "uarch/pipeline.hh"
#include "workloads/kernel.hh"

namespace vanguard {

class TelemetryHub;

/**
 * Exponential backoff schedule for worker restarts. Pure function of
 * the consecutive-failure count: delayMs(0) = 0 (first spawn is
 * free), then base, 2*base, 4*base, ... clamped to cap.
 */
struct BackoffPolicy
{
    unsigned baseMs = 25;
    unsigned capMs = 1000;

    unsigned
    delayMs(unsigned consecutive_failures) const
    {
        if (consecutive_failures == 0)
            return 0;
        unsigned shift = consecutive_failures - 1;
        if (shift > 20)
            shift = 20;
        uint64_t d = static_cast<uint64_t>(baseMs) << shift;
        return d > capMs ? capMs : static_cast<unsigned>(d);
    }
};

/** Workers beat at a quarter of the supervisor's deadline: four
 *  missed beats, not one scheduling hiccup, trip the watchdog. */
inline unsigned
heartbeatIntervalMs(unsigned deadline_ms)
{
    unsigned interval = deadline_ms / 4;
    return interval == 0 ? 1 : interval;
}

/**
 * The scope key under which a worker draws the `worker.kill` site:
 * mixes the job scope with the delivery ordinal, so a job whose first
 * delivery killed its worker draws fresh on redelivery (a fault-plan
 * kill is a one-shot crash, not a poison job). Distinct from the job
 * scope itself so kill draws never perturb in-body draw sequences.
 */
inline uint64_t
workerKillScope(uint64_t job_scope, uint64_t delivery)
{
    uint64_t h = 0xcbf29ce484222325ull;
    for (uint64_t v : {job_scope, delivery, uint64_t{0x6b696c6c}}) {
        for (int i = 0; i < 8; ++i) {
            h ^= (v >> (8 * i)) & 0xff;
            h *= 0x100000001b3ull;
        }
    }
    return h;
}

/** Per-job heartbeat-suppression scope (see worker.heartbeat site):
 *  every beat of a job draws under the same key at draw 0, so a plan
 *  either suppresses all of a job's beats (guaranteed watchdog trip)
 *  or none — a worker-count-independent pattern. */
inline uint64_t
workerHeartbeatScope(uint64_t job_scope)
{
    return workerKillScope(job_scope, uint64_t{0xb3a7});
}

/**
 * One job body shipped to a worker. Everything the worker needs is in
 * here; `spec.name` points into `specName` after parse (call
 * bindSpecName() after copying or assignment).
 */
struct WorkerJob
{
    std::string phase = "simulate"; ///< "train" | "simulate"
    size_t slot = 0;                ///< job index within its phase
    uint64_t scopeKey = 0;          ///< fault-injection scope key
    /** Draws the supervisor already consumed under scopeKey before
     *  dispatch (the job.attempt probe); the worker resumes there. */
    uint64_t scopeStartDraw = 1;
    uint64_t delivery = 0;          ///< stamped by the pool per send

    BenchmarkSpec spec;
    std::string specName;           ///< owning storage for spec.name
    VanguardOptions options;        ///< width already applied

    int config = 1;                 ///< 0 base, 1 exp (simulate)
    uint64_t seed = 0;              ///< REF seed (simulate)
    bool collectStalls = false;     ///< simulate: base-config stalls
    std::string profileText;        ///< simulate: serialized TRAIN profile

    void bindSpecName() { spec.name = specName.c_str(); }
};

/** What came back over the result frame. */
struct WorkerResult
{
    bool ok = false;
    size_t slot = 0;

    // ok payloads
    std::string profileText;        ///< train
    SimStats stats;                 ///< simulate

    // fail payload: rethrown by the supervisor verbatim, so journal
    // and failure-table bytes match the in-process pool.
    SimError::Kind kind = SimError::Kind::Internal;
    std::string message;

    /** Per-kind faults injected while the job body ran (folded into
     *  the supervisor's counters for gauge identity across modes). */
    uint64_t injected[FaultPlan::kNumKinds] = {};
};

/** Bucket bounds (ms, powers of two) for the engine.worker.job_rtt
 *  histogram — shared by the pool and the runner's unconditional
 *  registration so both isolation modes dump identical shapes. */
std::vector<uint64_t> workerRttBoundsMs();

/** Frame-body codecs (versioned text, exact numeric round-trips). */
std::string serializeWorkerJob(const WorkerJob &job);
bool parseWorkerJob(const std::string &body, WorkerJob *out,
                    std::string *error);
std::string serializeWorkerResult(const WorkerResult &res);
bool parseWorkerResult(const std::string &body, WorkerResult *out,
                       std::string *error);

/**
 * Per-process execution of one self-contained job body: the shared
 * core of the pool's `--worker` loop and the sweep fabric's remote
 * worker (core/coordinator.hh). Owns the (spec × options × config ×
 * profile) compile cache so every REF seed of a group reuses one
 * artifact, re-enters the job's fault scope past the draws the
 * supervisor consumed, honors the deliberate-crash chaos hooks, and
 * reports per-kind injected-fault deltas in the result. Job failures
 * never throw — they come back as ok=false results carrying the
 * SimError kind/message verbatim, which is what keeps journal bytes
 * identical across execution modes. The job's spec.name must be bound
 * (parseWorkerJob binds it).
 */
class JobBodyRunner
{
  public:
    JobBodyRunner();
    ~JobBodyRunner();

    JobBodyRunner(const JobBodyRunner &) = delete;
    JobBodyRunner &operator=(const JobBodyRunner &) = delete;

    WorkerResult run(const WorkerJob &job);

    /**
     * Advisory running totals across every run() so far — the payload
     * of the live STATS frames. Readable from another thread (the
     * worker's heartbeat thread, the remote worker's renew thread)
     * while a job runs; never part of any authoritative result.
     */
    struct BodyStats
    {
        uint64_t jobsDone = 0;
        uint64_t instsRetired = 0;  ///< dynamic insts of ok simulates
        uint64_t cacheHits = 0;     ///< compile-artifact cache hits
        uint64_t cacheMisses = 0;
    };
    BodyStats bodyStats() const;

  private:
    struct Cache;
    std::unique_ptr<Cache> cache_;
    std::atomic<uint64_t> jobsDone_{0};
    std::atomic<uint64_t> instsRetired_{0};
};

class WorkerPool
{
  public:
    struct Options
    {
        unsigned workers = 1;
        /** Binary to exec ("" = this executable, via /proc/self/exe);
         *  must understand `--worker <fd>`. */
        std::string execPath;
        unsigned heartbeatTimeoutMs = 10000;
        unsigned helloTimeoutMs = 10000;
        unsigned rlimitMb = 0;          ///< RLIMIT_AS cap (0 = none)
        unsigned rlimitCpuSec = 0;      ///< RLIMIT_CPU cap (0 = none)
        unsigned quarantineDeaths = 3;  ///< K consecutive deaths
        unsigned restartStormLimit = 10;
        unsigned reapTimeoutMs = 2000;  ///< graceful-drain deadline
        BackoffPolicy backoff{};
        /** Fault plan forwarded to workers ("" = the ambient armed
         *  plan, if any). */
        std::string faultPlanSpec;
        /** Registry for the engine.worker.* instruments (optional). */
        MetricsRegistry *metrics = nullptr;
        /** Live telemetry sink for worker STATS frames (optional;
         *  advisory only — never touches the registry merges). */
        TelemetryHub *telemetry = nullptr;
    };

    /** Does this build/platform carry fork/exec supervision? */
    static bool supported();

    explicit WorkerPool(const Options &opts);
    ~WorkerPool();

    WorkerPool(const WorkerPool &) = delete;
    WorkerPool &operator=(const WorkerPool &) = delete;

    /**
     * Run one job body out of process (blocking; thread-safe; called
     * from pool worker threads). Returns only an ok result. Worker-
     * reported failures rethrow as SimError(kind, message) with the
     * worker's message verbatim; worker deaths retry internally on a
     * fresh worker until the job completes or kills quarantineDeaths
     * consecutive workers (then SimError(Internal) quarantine);
     * heartbeat expiry SIGKILLs the worker and throws SimError(Hang).
     */
    WorkerResult execute(WorkerJob job);

    /**
     * Graceful drain: QUIT frame + exactly one SIGTERM per live
     * worker, bounded reap, SIGKILL stragglers. Idempotent; the
     * destructor calls it. No child of this pool survives it.
     */
    void shutdown();

    /** Live worker pids (test hooks: SIGSTOP/SIGKILL drills). */
    std::vector<int> workerPids() const;

    struct Stats
    {
        uint64_t spawns = 0;            ///< successful worker spawns
        uint64_t restarts = 0;          ///< spawns after a loss
        uint64_t heartbeatMisses = 0;
        uint64_t quarantinedJobs = 0;
        uint64_t dataFrames = 0;        ///< JOB + RESULT frames
    };
    Stats stats() const;

  private:
    struct Slot;

    size_t acquireSlot();
    void releaseSlot(size_t idx);
    void ensureAlive(Slot &slot);
    void spawnWorker(Slot &slot);
    void killWorker(Slot &slot, bool already_dead);
    std::string reapWorker(Slot &slot);
    void noteLoss(const std::string &job_key);
    void noteCompletion();
    void bumpCounter(const char *name, uint64_t delta = 1);

    Options opts_;
    mutable std::mutex mutex_;
    std::condition_variable slotFree_;
    std::vector<std::unique_ptr<Slot>> slots_;
    std::map<std::string, unsigned> consecutiveDeaths_;
    std::map<std::string, uint64_t> deliveries_;
    uint64_t spawnAttempts_ = 0; ///< worker.spawn draw ordinal
    unsigned consecutiveLosses_ = 0; ///< resets on any completed job
    bool broken_ = false;
    std::string brokenReason_;
    bool shutdownDone_ = false;
    Stats stats_;
};

/**
 * Worker-process entry (the `--worker <fd>` mode of vanguard_cli and
 * of any test binary that embeds the pool): speak the protocol on fd
 * until QUIT/EOF. Returns the process exit code. Installs the
 * shutdown latch so a process-group SIGINT/SIGTERM finishes the
 * in-flight job before exiting (the supervisor owns drain policy).
 */
int runWorkerProcess(int fd);

} // namespace vanguard

#endif // VANGUARD_CORE_WORKER_POOL_HH
