/**
 * @file
 * Suite-level experiment harness shared by the bench binaries: run a
 * whole suite at one or more widths and render paper-style tables.
 */

#ifndef VANGUARD_CORE_EXPERIMENT_HH
#define VANGUARD_CORE_EXPERIMENT_HH

#include <string>
#include <vector>

#include "core/vanguard.hh"

namespace vanguard {

struct SuiteResult
{
    std::vector<SeedSummary> rows;
    double geomeanMeanPct = 0.0;
    double geomeanBestPct = 0.0;
};

/** Evaluate every benchmark of a suite at the options' width. */
SuiteResult runSuite(const std::vector<BenchmarkSpec> &suite,
                     const VanguardOptions &opts,
                     bool verbose = true);

struct RunnerOptions; // core/runner.hh
struct JobFailure;    // core/runner.hh

/**
 * The paper's speedup-figure layout: one row per benchmark, one
 * column per width, with a trailing Geomean row.
 *
 * Runs fault-tolerantly: a benchmark whose every seed failed renders
 * as "FAIL" and the failure summary table goes to stderr; the figure
 * itself still completes from the surviving jobs. Pass
 * `failures_out` to additionally receive the failure records (e.g.
 * for threshold-based exit codes).
 *
 * @param best_input use the best REF input (Figs. 9/11) instead of
 *                   the all-inputs average (Figs. 8/10/12/13).
 */
std::string renderSpeedupFigure(
    const std::string &title,
    const std::vector<BenchmarkSpec> &suite,
    const std::vector<unsigned> &widths, const VanguardOptions &base,
    bool best_input, const RunnerOptions &ropts,
    std::vector<JobFailure> *failures_out = nullptr);

/** Convenience overload with default runner options. */
std::string renderSpeedupFigure(
    const std::string &title,
    const std::vector<BenchmarkSpec> &suite,
    const std::vector<unsigned> &widths, const VanguardOptions &base,
    bool best_input);

/** Geomean of (1 + pct/100) ratios expressed back as a percent. */
double geomeanPct(const std::vector<double> &pcts);

} // namespace vanguard

#endif // VANGUARD_CORE_EXPERIMENT_HH
