/**
 * @file
 * Parallel experiment engine: flattens a (benchmark x width x config
 * x REF-seed) sweep into independent simulation jobs on a shared
 * thread pool.
 *
 * Phases (each a pool-wide barrier):
 *   1. train   — one job per benchmark (training is width-independent),
 *   2. compile — one job per (benchmark, width): both configurations,
 *   3. simulate — one job per (benchmark, width, config, seed); each
 *      job builds its own Memory and predictor and reads the phase-2
 *      CompiledConfig strictly read-only,
 *   4. assemble — single-threaded, in index order.
 *
 * Determinism contract: jobs write into pre-sized slots keyed by job
 * index, never by completion order, and every job is a pure function
 * of its (spec, options, seed) inputs — so results are bit-identical
 * to the serial path at any worker count, including VANGUARD_JOBS=1.
 * Progress lines go to stderr through a mutex-guarded, rate-limited
 * reporter and are the only nondeterministic output.
 */

#ifndef VANGUARD_CORE_RUNNER_HH
#define VANGUARD_CORE_RUNNER_HH

#include <vector>

#include "core/experiment.hh"

namespace vanguard {

struct RunnerOptions
{
    /** Worker threads; 0 defers to VANGUARD_JOBS, then
     *  hardware_concurrency (ThreadPool::resolveWorkerCount). */
    unsigned jobs = 0;

    /** Per-benchmark mean/best summary lines on stderr. */
    bool verbose = false;

    /** Prefix for rate-limited progress lines ("" disables them). */
    std::string tag;
};

/**
 * Evaluate a suite at every requested width through one pool.
 * Returns one SuiteResult per width, in the widths' order, each
 * bit-identical to a serial per-width runSuite pass.
 */
std::vector<SuiteResult>
runSuiteWidths(const std::vector<BenchmarkSpec> &suite,
               const std::vector<unsigned> &widths,
               const VanguardOptions &base,
               const RunnerOptions &ropts = {});

} // namespace vanguard

#endif // VANGUARD_CORE_RUNNER_HH
