/**
 * @file
 * Parallel experiment engine: flattens a (benchmark x width x config
 * x REF-seed) sweep into independent simulation jobs on a shared
 * thread pool, with per-job fault isolation.
 *
 * Phases (each a pool-wide barrier):
 *   1. train   — one job per benchmark (training is width-independent),
 *   2. compile — one job per (benchmark, width): both configurations,
 *   3. simulate — one job per (benchmark, width, config, seed),
 *      grouped into one work item per (benchmark, width, config) so
 *      eligible groups share a batched fast-path dispatch loop
 *      (RunnerOptions::batchLanes); each seed builds its own Memory
 *      and predictor and reads the phase-2 CompiledConfig strictly
 *      read-only,
 *   4. assemble — single-threaded, in index order.
 *
 * Fault isolation: every job runs under a try/catch that converts a
 * SimError (or any exception) into a JobFailure slot instead of
 * killing the sweep. Jobs downstream of a failure (compiles of a
 * failed train, simulations of a failed compile) are skipped without
 * generating their own records, so the failure list holds root causes
 * only, in deterministic job-index order. Transient kinds
 * (SimError::isTransient) are retried up to maxAttempts times —
 * deterministically, since each job is a pure function of its inputs.
 * The suite completes with partial results: failed seeds are dropped
 * from a benchmark's mean/best (SeedSummary::failedSeeds counts
 * them), fully-failed rows are excluded from suite geomeans.
 *
 * Failure replay: with a non-empty replayDir, each root-cause failure
 * writes a deterministic replay bundle (core/replay.hh) that
 * `vanguard_cli --replay <bundle>` re-executes solo under the
 * lockstep oracle.
 *
 * Determinism contract: jobs write into pre-sized slots keyed by job
 * index, never by completion order, and every job is a pure function
 * of its (spec, options, seed) inputs — so results are bit-identical
 * to the serial path at any worker count, including VANGUARD_JOBS=1,
 * and every non-failed slot of a partially-failed sweep is
 * bit-identical to the same slot of a clean run. Progress lines go to
 * stderr through a mutex-guarded, rate-limited reporter and are the
 * only nondeterministic output.
 *
 * Crash safety: with RunnerOptions::checkpointDir set, every
 * completed job appends a checksummed record to a `vanguard-journal
 * v1` ledger (core/journal.hh) — simulate records carry the full
 * SimStats, train records pair with an atomically-written profile
 * checkpoint, failures record their JobFailure. A later run with
 * `resume = true` validates the journal against the sweep spec and
 * replays completed slots without re-executing them, re-running only
 * missing/corrupt entries; because jobs are pure, the resumed report
 * is bit-identical to an uninterrupted run. Graceful shutdown
 * (support/shutdown.hh; SIGINT/SIGTERM in the CLI) drains the pool —
 * queued jobs are discarded, in-flight jobs finish and checkpoint —
 * and the report comes back with `interrupted` set.
 */

#ifndef VANGUARD_CORE_RUNNER_HH
#define VANGUARD_CORE_RUNNER_HH

#include <functional>
#include <string>
#include <vector>

#include "core/experiment.hh"
#include "support/error.hh"
#include "support/metrics.hh"
#include "support/tracing.hh"

namespace vanguard {

class Coordinator;
class TelemetryHub;

/** Which experiment job is (or was) running; attached to failures. */
struct JobIdentity
{
    const char *phase = "";     ///< "train" | "compile" | "simulate"
    std::string benchmark;
    unsigned width = 0;         ///< 0 for width-independent phases
    int config = -1;            ///< 0 baseline, 1 experimental, -1 n/a
    uint64_t seed = 0;          ///< 0 when not seed-specific
    size_t index = 0;           ///< job index within its phase

    std::string describe() const;
};

/** One failed job: identity plus the structured error it raised. */
struct JobFailure
{
    JobIdentity id;
    SimError::Kind kind = SimError::Kind::Internal;
    std::string message;        ///< SimError::detail (undecorated)
    unsigned attempts = 1;      ///< tries consumed (retries included)
    std::string bundlePath;     ///< replay bundle, "" if not written
};

/**
 * Where job bodies execute. `inproc` (the default) runs them on the
 * shared thread pool; `process` routes train and simulate bodies
 * through a supervised pool of worker processes (core/worker_pool.hh)
 * so a SIGSEGV, OOM kill, or hang in one job cannot take down the
 * sweep. Every piece of bookkeeping stays in the supervisor, so sweep
 * output is byte-identical between the modes at any worker count.
 */
enum class JobIsolation
{
    inproc,
    process,
};

struct RunnerOptions
{
    /** Worker threads; 0 defers to VANGUARD_JOBS, then
     *  hardware_concurrency (ThreadPool::resolveWorkerCount). */
    unsigned jobs = 0;

    /** Job-body execution mode; `process` requires
     *  WorkerPool::supported() (SimError(Config) otherwise). */
    JobIsolation isolation = JobIsolation::inproc;

    /** Process mode: worker heartbeat deadline in ms (a silent worker
     *  past it is SIGKILLed and its job fails with SimError(Hang)). */
    unsigned workerHeartbeatMs = 10000;

    /** Process mode: RLIMIT_AS cap per worker in MiB (0 = none). */
    unsigned workerRlimitMb = 0;

    /** Process mode: binary to exec for workers ("" = this
     *  executable); must understand `--worker <fd>`. */
    std::string workerExecPath;

    /**
     * Distributed mode: when set, train and simulate bodies are leased
     * to remote workers through this sweep coordinator
     * (core/coordinator.hh) instead of running in-process. All
     * bookkeeping (journal, metrics, result slots, retries) stays
     * local, so output is byte-identical to the in-process and
     * --isolate-jobs paths. Mutually exclusive with
     * JobIsolation::process; disables simulate batching (remote bodies
     * are solo, like process mode). Not owned.
     */
    Coordinator *coordinator = nullptr;

    /**
     * Maximum REF-seed lanes per batched simulation (1 disables
     * batching). The simulate phase groups the seed jobs of each
     * (benchmark, width, config) and drives eligible groups through
     * one shared fast-path dispatch loop (simulateConfigBatch); each
     * seed keeps its own journal record, metric snapshot, counters,
     * and failure slot, bit-identical to a solo run. Lockstep sweeps,
     * fault-injecting sweeps (RunnerOptions::faultInjection or an
     * armed process injector), and VANGUARD_FORCE_REFERENCE runs fall
     * back to solo jobs automatically; a lane that fails inside a
     * batch re-runs solo so failure records (retries, attempts,
     * replay bundles) match solo execution exactly.
     */
    unsigned batchLanes = 8;

    /** Per-benchmark mean/best summary lines on stderr. */
    bool verbose = false;

    /** Prefix for rate-limited progress lines ("" disables them). */
    std::string tag;

    /** Total tries per job for transient failure kinds (>= 1);
     *  non-transient kinds never retry. */
    unsigned maxAttempts = 2;

    /** Failures tolerated before SuiteReport::exceededThreshold()
     *  reports the sweep itself as failed. */
    size_t failureThreshold = 0;

    /** Directory for replay bundles ("" disables writing them). */
    std::string replayDir;

    /**
     * Directory for the crash-safety journal and TRAIN-profile
     * checkpoints ("" disables journaling). Created if missing.
     */
    std::string checkpointDir;

    /**
     * Resume from checkpointDir's journal: validate its spec
     * fingerprint against this sweep (SimError(Config) on mismatch),
     * replay completed slots, re-run only missing/corrupt ones.
     */
    bool resume = false;

    /**
     * Test-only fault injection: invoked at the top of every job
     * attempt with the job's identity; throwing from it fails the
     * attempt exactly as if the job body threw.
     */
    std::function<void(const JobIdentity &)> faultInjection;

    /**
     * Metrics sink: the engine registers/updates `engine.*` counters
     * and folds every job's snapshot in (per-job scopes named
     * `train.<bench>`, `compile.<bench>.w<w>`,
     * `sim.<bench>.w<w>.<base|exp>.s<i>`). Null runs the sweep
     * against a private throwaway registry — the merge-time
     * bit-identity assertion still fires either way.
     */
    MetricsRegistry *metrics = nullptr;

    /**
     * Event-trace sink: train/compile/simulate spans per job (with
     * benchmark/width/config/seed/attempt args), retry/failure/
     * checkpoint instants, and coarse per-phase spans. Null disables
     * tracing entirely (no overhead beyond a branch).
     */
    Tracer *tracer = nullptr;

    /**
     * Live telemetry sink (support/telemetry.hh): forwarded to the
     * process pool / coordinator so worker STATS frames reach the
     * hub. Strictly advisory — null or not, registry dumps, journals,
     * and stdout are byte-identical. Not owned.
     */
    TelemetryHub *telemetry = nullptr;
};

/** Everything a fault-tolerant sweep produced. */
struct SuiteReport
{
    /** One SuiteResult per width (partial where jobs failed). */
    std::vector<SuiteResult> results;

    /** Root-cause failures, in deterministic job-index order. */
    std::vector<JobFailure> failures;

    size_t totalJobs = 0;

    /** Jobs satisfied from the journal instead of re-executed. */
    size_t replayedJobs = 0;

    /**
     * A shutdown request drained the sweep before it finished;
     * `results` is empty (nothing was assembled) and, when
     * journaling, completed jobs are checkpointed for --resume.
     */
    bool interrupted = false;

    bool
    exceededThreshold(size_t threshold) const
    {
        return failures.size() > threshold;
    }
};

/**
 * Evaluate a suite at every requested width through one pool,
 * surviving and recording individual job failures.
 */
SuiteReport runSuiteWidthsReport(
    const std::vector<BenchmarkSpec> &suite,
    const std::vector<unsigned> &widths, const VanguardOptions &base,
    const RunnerOptions &ropts = {});

/**
 * Strict variant: identical results, but any job failure rethrows the
 * first root cause (annotated with its job identity) after the sweep
 * completes. Callers that want partial results use the Report form.
 */
std::vector<SuiteResult>
runSuiteWidths(const std::vector<BenchmarkSpec> &suite,
               const std::vector<unsigned> &widths,
               const VanguardOptions &base,
               const RunnerOptions &ropts = {});

/** Render the failure summary table ("" when no failures). */
std::string renderFailureTable(const std::vector<JobFailure> &failures);

} // namespace vanguard

#endif // VANGUARD_CORE_RUNNER_HH
