#include "core/experiment.hh"

#include <cstdio>

#include "support/stats.hh"

namespace vanguard {

double
geomeanPct(const std::vector<double> &pcts)
{
    std::vector<double> ratios;
    ratios.reserve(pcts.size());
    for (double p : pcts)
        ratios.push_back(1.0 + p / 100.0);
    return (geomean(ratios) - 1.0) * 100.0;
}

SuiteResult
runSuite(const std::vector<BenchmarkSpec> &suite,
         const VanguardOptions &opts, bool verbose)
{
    SuiteResult result;
    std::vector<double> means;
    std::vector<double> bests;
    for (const auto &spec : suite) {
        SeedSummary summary = evaluateBenchmarkAllRefs(spec, opts);
        if (verbose) {
            std::fprintf(stderr, "  %-18s mean %+6.1f%%  best %+6.1f%%\n",
                         summary.name.c_str(), summary.meanSpeedupPct,
                         summary.bestSpeedupPct);
        }
        means.push_back(summary.meanSpeedupPct);
        bests.push_back(summary.bestSpeedupPct);
        result.rows.push_back(std::move(summary));
    }
    result.geomeanMeanPct = geomeanPct(means);
    result.geomeanBestPct = geomeanPct(bests);
    return result;
}

std::string
renderSpeedupFigure(const std::string &title,
                    const std::vector<BenchmarkSpec> &suite,
                    const std::vector<unsigned> &widths,
                    const VanguardOptions &base, bool best_input)
{
    std::vector<std::string> headers = {"benchmark"};
    for (unsigned w : widths)
        headers.push_back(std::to_string(w) + "-wide %");
    TablePrinter table(std::move(headers));

    std::vector<SuiteResult> per_width;
    for (unsigned w : widths) {
        VanguardOptions opts = base;
        opts.width = w;
        std::fprintf(stderr, "[%s] width %u...\n", title.c_str(), w);
        per_width.push_back(runSuite(suite, opts));
    }

    for (size_t b = 0; b < suite.size(); ++b) {
        std::vector<std::string> cells = {suite[b].name};
        for (size_t w = 0; w < widths.size(); ++w) {
            const SeedSummary &row = per_width[w].rows[b];
            cells.push_back(TablePrinter::fmt(
                best_input ? row.bestSpeedupPct : row.meanSpeedupPct));
        }
        table.addRow(std::move(cells));
    }
    std::vector<std::string> geo = {"GEOMEAN"};
    for (size_t w = 0; w < widths.size(); ++w) {
        geo.push_back(TablePrinter::fmt(
            best_input ? per_width[w].geomeanBestPct
                       : per_width[w].geomeanMeanPct));
    }
    table.addRow(std::move(geo));

    return title + "\n" + table.render();
}

} // namespace vanguard
