#include "core/experiment.hh"

#include <cstdio>

#include "core/runner.hh"
#include "support/stats.hh"
#include "support/thread_pool.hh"

namespace vanguard {

double
geomeanPct(const std::vector<double> &pcts)
{
    std::vector<double> ratios;
    ratios.reserve(pcts.size());
    for (double p : pcts)
        ratios.push_back(1.0 + p / 100.0);
    return (geomean(ratios) - 1.0) * 100.0;
}

SuiteResult
runSuite(const std::vector<BenchmarkSpec> &suite,
         const VanguardOptions &opts, bool verbose)
{
    RunnerOptions ropts;
    ropts.verbose = verbose;
    std::vector<SuiteResult> per_width =
        runSuiteWidths(suite, {opts.width}, opts, ropts);
    return std::move(per_width.front());
}

std::string
renderSpeedupFigure(const std::string &title,
                    const std::vector<BenchmarkSpec> &suite,
                    const std::vector<unsigned> &widths,
                    const VanguardOptions &base, bool best_input,
                    const RunnerOptions &ropts_in,
                    std::vector<JobFailure> *failures_out)
{
    std::vector<std::string> headers = {"benchmark"};
    for (unsigned w : widths)
        headers.push_back(std::to_string(w) + "-wide %");
    TablePrinter table(std::move(headers));

    // All widths go into one pool: (benchmark x width x config x
    // seed) simulation jobs run concurrently instead of serial
    // per-width passes.
    RunnerOptions ropts = ropts_in;
    if (ropts.tag.empty())
        ropts.tag = title;
    std::fprintf(stderr,
                 "[%s] %zu benchmarks x %zu widths x %zu REF seeds "
                 "on %u workers...\n",
                 title.c_str(), suite.size(), widths.size(),
                 kNumRefSeeds, ThreadPool::resolveWorkerCount());
    SuiteReport report = runSuiteWidthsReport(suite, widths, base, ropts);
    if (report.interrupted) {
        // Nothing was assembled; rendering rows would index into an
        // empty results vector. The journal (if any) holds what
        // completed; the caller decides how to surface the interrupt.
        std::fprintf(stderr,
                     "[%s] sweep interrupted before completion "
                     "(%zu failures recorded)\n",
                     title.c_str(), report.failures.size());
        if (failures_out != nullptr)
            *failures_out = std::move(report.failures);
        return title + "\n(interrupted before completion)\n";
    }
    const std::vector<SuiteResult> &per_width = report.results;

    for (size_t b = 0; b < suite.size(); ++b) {
        std::vector<std::string> cells = {suite[b].name};
        for (size_t w = 0; w < widths.size(); ++w) {
            const SeedSummary &row = per_width[w].rows[b];
            if (row.failedSeeds >= kNumRefSeeds)
                cells.push_back("FAIL");
            else
                cells.push_back(TablePrinter::fmt(
                    best_input ? row.bestSpeedupPct
                               : row.meanSpeedupPct));
        }
        table.addRow(std::move(cells));
    }
    std::vector<std::string> geo = {"GEOMEAN"};
    for (size_t w = 0; w < widths.size(); ++w) {
        geo.push_back(TablePrinter::fmt(
            best_input ? per_width[w].geomeanBestPct
                       : per_width[w].geomeanMeanPct));
    }
    table.addRow(std::move(geo));

    if (!report.failures.empty()) {
        std::fprintf(stderr, "[%s] %zu job(s) failed:\n%s",
                     title.c_str(), report.failures.size(),
                     renderFailureTable(report.failures).c_str());
    }
    if (failures_out != nullptr)
        *failures_out = std::move(report.failures);

    return title + "\n" + table.render();
}

std::string
renderSpeedupFigure(const std::string &title,
                    const std::vector<BenchmarkSpec> &suite,
                    const std::vector<unsigned> &widths,
                    const VanguardOptions &base, bool best_input)
{
    return renderSpeedupFigure(title, suite, widths, base, best_input,
                               RunnerOptions{}, nullptr);
}

} // namespace vanguard
