#include "core/replay.hh"

#include <cinttypes>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "support/logging.hh"
#include "support/versioned_format.hh"
#include "workloads/suites.hh"

namespace vanguard {

namespace {

constexpr unsigned kReplayVersion = 1;

std::string
hexU64(uint64_t v)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "0x%" PRIx64, v);
    return buf;
}

} // namespace

std::string
serializeOptionsLines(const VanguardOptions &o)
{
    std::ostringstream os;
    os << "opt predictor " << o.predictor << "\n";
    os << "opt superblock " << (o.applySuperblock ? 1 : 0) << "\n";
    os << "opt decompose " << (o.applyDecomposition ? 1 : 0) << "\n";
    os << "opt shadow-commit " << (o.shadowCommit ? 1 : 0) << "\n";
    os << "opt dbb-entries " << o.dbbEntries << "\n";
    os << "opt l1i-size-kb " << o.l1iSizeKB << "\n";
    os << "opt icache-prefetch " << (o.icachePrefetch ? 1 : 0) << "\n";
    os << "opt sel-min-exposed " << o.selection.minExposed << "\n";
    os << "opt sel-min-execs " << o.selection.minExecs << "\n";
    os << "opt sel-min-predictability "
       << o.selection.minPredictability << "\n";
    os << "opt sel-forward-only " << (o.selection.forwardOnly ? 1 : 0)
       << "\n";
    os << "opt dec-max-hoist " << o.decompose.maxHoistPerPath << "\n";
    os << "opt dec-max-slice " << o.decompose.maxSliceDepth << "\n";
    os << "opt sb-bias-threshold " << o.superblock.biasThreshold
       << "\n";
    os << "opt sb-min-execs " << o.superblock.minExecs << "\n";
    os << "opt sb-max-hoist " << o.superblock.maxHoist << "\n";
    os << "opt profile-max-insts " << o.profileMaxInsts << "\n";
    os << "opt sim-max-insts " << o.simMaxInsts << "\n";
    os << "opt cycle-budget " << o.simCycleBudget << "\n";
    os << "opt progress-window " << o.simProgressWindow << "\n";
    return os.str();
}

std::string
serializeReplayBundle(const ReplayBundle &b)
{
    std::ostringstream os;
    os << "vanguard-replay v" << kReplayVersion << "\n";
    os << "benchmark " << b.benchmark << "\n";
    os << "phase " << b.phase << "\n";
    os << "width " << b.width << "\n";
    os << "config " << (b.config == 0 ? "base" : "exp") << "\n";
    os << "seed " << hexU64(b.seed) << "\n";
    os << "iterations " << b.iterations << "\n";
    os << serializeOptionsLines(b.options);
    os << "error-kind " << b.errorKind << "\n";
    os << "error-msg " << b.errorMessage << "\n";
    return os.str();
}

ReplayParseResult
parseReplayBundle(const std::string &text)
{
    ReplayParseResult out;
    std::istringstream is(text);
    std::string line;
    bool saw_header = false;

    auto fail = [&out](const std::string &why) {
        out.ok = false;
        out.error = why;
        return out;
    };

    while (std::getline(is, line)) {
        if (line.empty() || line[0] == '#')
            continue;
        if (!saw_header) {
            // Versioned header: an unknown/future "vanguard-replay
            // vN" raises SimError(Io) naming the version (shared
            // policy with the journal format); a line that is not a
            // replay header at all is an ordinary parse failure.
            if (!parseVersionedHeader(line, "vanguard-replay",
                                      kReplayVersion, nullptr))
                return fail("missing 'vanguard-replay v1' header");
            saw_header = true;
            continue;
        }
        std::istringstream ls(line);
        std::string key;
        ls >> key;
        ReplayBundle &b = out.bundle;
        VanguardOptions &o = b.options;
        if (key == "benchmark") {
            ls >> b.benchmark;
        } else if (key == "phase") {
            ls >> b.phase;
        } else if (key == "width") {
            ls >> b.width;
            o.width = b.width;
        } else if (key == "config") {
            std::string c;
            ls >> c;
            if (c != "base" && c != "exp")
                return fail("bad config '" + c + "'");
            b.config = c == "exp" ? 1 : 0;
        } else if (key == "seed") {
            std::string s;
            ls >> s;
            b.seed = std::strtoull(s.c_str(), nullptr, 0);
        } else if (key == "iterations") {
            ls >> b.iterations;
        } else if (key == "opt") {
            std::string name;
            ls >> name;
            if (name == "predictor") {
                ls >> o.predictor;
            } else if (name == "superblock") {
                int v; ls >> v; o.applySuperblock = v != 0;
            } else if (name == "decompose") {
                int v; ls >> v; o.applyDecomposition = v != 0;
            } else if (name == "shadow-commit") {
                int v; ls >> v; o.shadowCommit = v != 0;
            } else if (name == "dbb-entries") {
                ls >> o.dbbEntries;
            } else if (name == "l1i-size-kb") {
                ls >> o.l1iSizeKB;
            } else if (name == "icache-prefetch") {
                int v; ls >> v; o.icachePrefetch = v != 0;
            } else if (name == "sel-min-exposed") {
                ls >> o.selection.minExposed;
            } else if (name == "sel-min-execs") {
                ls >> o.selection.minExecs;
            } else if (name == "sel-min-predictability") {
                ls >> o.selection.minPredictability;
            } else if (name == "sel-forward-only") {
                int v; ls >> v; o.selection.forwardOnly = v != 0;
            } else if (name == "dec-max-hoist") {
                ls >> o.decompose.maxHoistPerPath;
            } else if (name == "dec-max-slice") {
                ls >> o.decompose.maxSliceDepth;
            } else if (name == "sb-bias-threshold") {
                ls >> o.superblock.biasThreshold;
            } else if (name == "sb-min-execs") {
                ls >> o.superblock.minExecs;
            } else if (name == "sb-max-hoist") {
                ls >> o.superblock.maxHoist;
            } else if (name == "profile-max-insts") {
                ls >> o.profileMaxInsts;
            } else if (name == "sim-max-insts") {
                ls >> o.simMaxInsts;
            } else if (name == "cycle-budget") {
                ls >> o.simCycleBudget;
            } else if (name == "progress-window") {
                ls >> o.simProgressWindow;
            }
            // Unknown opts are skipped: forward compatibility.
        } else if (key == "error-kind") {
            ls >> out.bundle.errorKind;
        } else if (key == "error-msg") {
            // Everything after the key, verbatim.
            std::string rest;
            std::getline(ls, rest);
            if (!rest.empty() && rest[0] == ' ')
                rest.erase(0, 1);
            out.bundle.errorMessage = rest;
        } else {
            return fail("unknown key '" + key + "'");
        }
    }
    if (!saw_header)
        return fail("empty bundle");
    if (out.bundle.benchmark.empty())
        return fail("bundle names no benchmark");
    out.ok = true;
    return out;
}

ReplayParseResult
loadReplayBundle(const std::string &path)
{
    std::ifstream in(path);
    if (!in) {
        ReplayParseResult out;
        out.error = "cannot read '" + path + "'";
        return out;
    }
    std::stringstream buf;
    buf << in.rdbuf();
    return parseReplayBundle(buf.str());
}

ReplayOutcome
replayBundle(const ReplayBundle &bundle, bool lockstep)
{
    ReplayOutcome out;
    try {
        BenchmarkSpec spec = findBenchmark(bundle.benchmark);
        if (bundle.iterations != 0)
            spec.iterations = bundle.iterations;
        VanguardOptions opts = bundle.options;
        opts.width = bundle.width;
        opts.lockstep = lockstep;

        TrainArtifacts train = trainBenchmark(spec, opts);
        if (bundle.phase == "train")
            return out; // clean: training itself did not fail

        bool decomposed =
            bundle.config == 1 && opts.applyDecomposition;
        CompiledConfig config =
            compileConfig(spec, train, decomposed, opts);
        if (bundle.phase == "compile")
            return out;

        out.stats = simulateConfig(spec, config, opts, bundle.seed,
                                   /*collect_branch_stalls=*/
                                   bundle.config == 0);
    } catch (const SimError &e) {
        out.failed = true;
        out.kind = SimError::kindName(e.kind());
        out.message = e.detail();
        out.reproduced = out.kind == bundle.errorKind;
    } catch (const std::exception &e) {
        out.failed = true;
        out.kind = SimError::kindName(SimError::Kind::Internal);
        out.message = e.what();
        out.reproduced = out.kind == bundle.errorKind;
    }
    return out;
}

} // namespace vanguard
