/**
 * @file
 * Distributed sweep fabric: a TCP coordinator that leases job indices
 * to remote workers, plus the remote-worker client loop.
 *
 * This is the networked half of the worker architecture PR 7 started:
 * the same self-contained job bodies (core/worker_pool.hh WorkerJob /
 * WorkerResult, codecs and all) now cross a TCP socket instead of a
 * socketpair, speaking the same CRC-framed protocol
 * (support/ipc.hh). Every piece of sweep bookkeeping — journal,
 * metric merges, result slots, retry policy, artifact reuse — stays
 * in the coordinator process, which is exactly why a distributed run
 * is byte-identical to an in-process one: the runner consumes the
 * same slot-indexed results either way; only *where* a body computed
 * differs.
 *
 * Lease protocol (all frame bodies versioned; see ipc.hh for types):
 *
 *   worker                    coordinator
 *   ------                    -----------
 *   HELLO "vanguard-remote"->
 *                          <- CONFIG (lease-ms, fault plans)
 *   CLAIM                  ->
 *                          <- LEASE (lease id, job body)   [or: idle
 *                                                           HEARTBEATs
 *                                                           while the
 *                                                           queue is
 *                                                           empty]
 *   RENEW (every lease/4)  ->
 *   RESULT (lease id, body)->
 *                          <- RESULT-ACK (lease id)
 *   ...claim again...
 *                          <- DRAIN (final)                [shutdown]
 *
 * Lease state machine (per offered job):
 *
 *   Queued --grant--> Leased --result--> Done
 *     ^                  |                 ^
 *     |   expiry/peer    |                 |  late/duplicate result:
 *     +---- loss --------+                 |  byte-compare against the
 *           (re-grant to a live peer;      |  recorded result; mismatch
 *            kQuarantine consecutive       |  is a loud
 *            losses fail the job)          +- SimError(Divergence)
 *
 * Delivery semantics: leases make delivery *at least once* — an
 * expired lease is re-granted even though the original worker may
 * still finish (a renew lost to the network looks identical to a dead
 * worker). Completions are reconciled idempotently: the first result
 * for an offer is recorded (and flows into the journal/metric merges,
 * which are keyed by slot and already idempotent from the resume
 * path); every later result must be bit-identical to the recorded
 * bytes or the sweep dies with SimError(Divergence) — at-least-once
 * delivery + idempotent ledger merge = exactly-once effect, and the
 * byte-compare is the proof it held.
 *
 * Robustness policy (mirroring the PR 7 supervisor where it applies):
 * late-joining workers are admitted at any time; a worker identity
 * ("pid@ip") that loses leases is re-granted work only after the
 * shared BackoffPolicy delay; a job that loses quarantineDeaths
 * consecutive leases is failed as poison (SimError(Internal)) instead
 * of starving the queue; restartStormLimit consecutive lease losses
 * with no completion anywhere break the fabric loudly. SIGINT/SIGTERM
 * (the process-wide shutdown latch) discards queued-but-unleased
 * offers — their execute() calls raise JobDiscarded so the runner
 * records *nothing* for them, keeping resume byte-identity — while
 * leased offers run to completion and checkpoint.
 *
 * The remote worker (runRemoteWorker) wraps JobBodyRunner in a
 * claim/execute/report loop, renews its lease from a side thread
 * while the body runs, retransmits unacknowledged results, and
 * reconnects with jittered exponential backoff across coordinator
 * restarts and injected partitions (journal resume makes the
 * coordinator itself crash-safe; an unACKed result is simply
 * discarded on reconnect because re-execution is idempotent).
 *
 * POSIX-only, like the rest of the transport; Coordinator::supported()
 * gates it and the CLI maps unsupported platforms to exit 2.
 */

#ifndef VANGUARD_CORE_COORDINATOR_HH
#define VANGUARD_CORE_COORDINATOR_HH

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <exception>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/worker_pool.hh"
#include "support/metrics.hh"

namespace vanguard {

/**
 * Raised by Coordinator::execute for offers discarded by a
 * SIGINT/SIGTERM drain before any worker leased them. Deliberately
 * not a SimError: a discarded job did not run and must leave no
 * journal record, no failure-table entry, no retry — exactly like a
 * queued thread-pool job discarded by the in-process drain.
 */
struct JobDiscarded : std::exception
{
    const char *
    what() const noexcept override
    {
        return "job discarded by shutdown drain before lease";
    }
};

class Coordinator
{
  public:
    struct Options
    {
        uint16_t port = 0;          ///< 0 = ephemeral (see port())
        unsigned leaseMs = 10000;   ///< lease duration / renew base
        unsigned quarantineDeaths = 3;
        unsigned restartStormLimit = 10;
        BackoffPolicy backoff{};
        /** Job fault plan forwarded to workers ("" = ambient armed
         *  plan, as the worker pool does). */
        std::string faultPlanSpec;
        /** Registry for the engine.net.* counters (optional). */
        MetricsRegistry *metrics = nullptr;
        /** Live telemetry sink: peer STATS frames feed it, and the
         *  coordinator registers its lease table as the hub's
         *  /progress source. Advisory only (optional). */
        TelemetryHub *telemetry = nullptr;
    };

    /** Does this build/platform carry the TCP fabric? */
    static bool supported();

    /** Binds the listener and starts the service thread. Throws
     *  SimError(Io) if the port cannot be bound. */
    explicit Coordinator(const Options &opts);
    ~Coordinator();

    Coordinator(const Coordinator &) = delete;
    Coordinator &operator=(const Coordinator &) = delete;

    /** The bound port (resolves port 0 to the kernel's pick). */
    uint16_t port() const;

    /**
     * Run one job body on some remote worker (blocking; thread-safe;
     * called from runner pool threads). Returns only an ok result.
     * Worker-reported failures rethrow as SimError(kind, message)
     * verbatim; poison jobs throw SimError(Internal); a broken fabric
     * (restart storm, divergent duplicate) throws its reason from
     * every call; a shutdown drain throws JobDiscarded for offers no
     * worker had leased.
     */
    WorkerResult execute(WorkerJob job);

    /**
     * Drain and stop: discards queued offers, sends every connected
     * peer a final DRAIN frame, closes all sockets, joins the service
     * thread. Idempotent; the destructor calls it.
     */
    void shutdown();

    struct Stats
    {
        uint64_t leasesGranted = 0;
        uint64_t leasesExpired = 0;
        uint64_t leasesRegranted = 0;
        uint64_t reconnects = 0;
        uint64_t duplicateResults = 0;
        uint64_t frames = 0;        ///< sent + received
    };
    Stats stats() const;

  private:
    struct Impl;
    std::unique_ptr<Impl> impl_;
};

/**
 * Remote-worker entry (`vanguard_cli --remote-worker host:port`):
 * claim/execute/report against a coordinator until a final DRAIN
 * frame or a shutdown signal. Returns the process exit code (0 =
 * drained or signalled, 1 = unrecoverable local error). Connection
 * loss is not an error: the loop reconnects with jittered exponential
 * backoff indefinitely, surviving coordinator restarts.
 */
int runRemoteWorker(const std::string &host, uint16_t port);

} // namespace vanguard

#endif // VANGUARD_CORE_COORDINATOR_HH
