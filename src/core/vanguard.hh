/**
 * @file
 * Top-level Branch Vanguard API: the paper's full methodology for one
 * benchmark — profile on the TRAIN input, select and decompose
 * branches, schedule and lay out both configurations, and simulate on
 * REF inputs — plus the Table-2 metric computations.
 */

#ifndef VANGUARD_CORE_VANGUARD_HH
#define VANGUARD_CORE_VANGUARD_HH

#include <memory>
#include <string>
#include <vector>

#include "compiler/decompose.hh"
#include "exec/decoded_program.hh"
#include "compiler/select.hh"
#include "compiler/superblock.hh"
#include "profile/branch_profile.hh"
#include "uarch/config.hh"
#include "uarch/pipeline.hh"
#include "workloads/kernel.hh"

namespace vanguard {

struct VanguardOptions
{
    unsigned width = 4;
    std::string predictor = "gshare3";
    bool applySuperblock = true;    ///< biased-branch pass (both configs)
    bool applyDecomposition = true; ///< experimental config only
    bool shadowCommit = true;
    unsigned dbbEntries = 16;
    unsigned l1iSizeKB = 32;        ///< Sec. 6.1 I$ capacity knob
    bool icachePrefetch = false;    ///< next-line I$ prefetch ablation

    SelectionOptions selection{};
    DecomposeOptions decompose{};
    SuperblockOptions superblock{};

    uint64_t profileMaxInsts = 100'000'000;
    uint64_t simMaxInsts = 100'000'000;

    /**
     * Opt-in lockstep differential oracle: each simulation also runs
     * the functional interpreter on the original kernel and checks
     * the timing model's retired state (store stream + final arch
     * registers) online, raising SimError(Divergence) on the first
     * mismatch. Roughly doubles per-job cost.
     */
    bool lockstep = false;

    /**
     * Select the portable switch dispatcher for the fast path even in
     * builds that carry the computed-goto dispatcher (forwarded to
     * SimOptions::noThreadedDispatch). A machine-code choice only —
     * results are bit-identical either way.
     */
    bool noThreadedDispatch = false;

    /** Cycle-budget watchdog forwarded to SimOptions::cycleBudget
     *  (0 disables). The default is far above any legitimate run:
     *  simMaxInsts at the worst observed IPC stays under ~1e9. */
    uint64_t simCycleBudget = 2'000'000'000;

    /** Per-commit clock-advance watchdog forwarded to
     *  SimOptions::progressWindow (0 disables). */
    uint64_t simProgressWindow = 1'000'000;

    MachineConfig machine() const;
};

/** One compiled configuration of a benchmark. */
struct CompiledConfig
{
    Program prog;
    std::vector<bool> hoistedMask;  ///< by InstId; empty for baseline
    size_t staticInsts = 0;         ///< laid-out size
    bool decomposed = false;

    /**
     * Pre-decoded flat execution form of prog (a pure function of the
     * program and the I-line size), built once at compile time and
     * shared read-only by every REF-seed simulation of this artifact —
     * the decode pass runs per compile, not per run. shared_ptr so
     * CompiledConfig stays copyable across the parallel runner's job
     * plumbing without re-decoding.
     */
    std::shared_ptr<const DecodedProgram> decoded;
};

/** Everything measured for one (benchmark, ref-input, width) triple. */
struct BenchmarkOutcome
{
    std::string name;
    SimStats base;
    SimStats exp;
    double speedupPct = 0.0;

    // Compile-side facts (identical across ref inputs).
    size_t selectedBranches = 0;
    size_t baseStaticInsts = 0;
    size_t expStaticInsts = 0;

    // Table 2 metrics.
    double pbc = 0.0;       ///< % static forward branches converted
    double pdih = 0.0;      ///< % dynamic insts hoisted above conv. branch
    double alpbb = 0.0;     ///< avg loads per basic block
    double aspcb = 0.0;     ///< avg stall cycles per converted branch
    double phi = 0.0;       ///< % hoistable insts in successor blocks
    double mppkiBase = 0.0; ///< baseline mispredicts / kinst
    double piscs = 0.0;     ///< % increase in static code size
    double issuedIncreasePct = 0.0; ///< Fig. 14 quantity
};

/**
 * Profile the benchmark on the TRAIN input with the configured
 * predictor model and return the profile plus the selected branches.
 */
struct TrainArtifacts
{
    BranchProfile profile;
    std::vector<InstId> selected;
};

TrainArtifacts trainBenchmark(const BenchmarkSpec &spec,
                              const VanguardOptions &opts);

/**
 * Reconstruct TrainArtifacts from an existing profile (a saved PGO
 * artifact or a checkpointed TRAIN result) instead of re-profiling.
 * Branch selection is a pure function of (kernel shape, profile,
 * selection options), so the result is bit-identical to the
 * trainBenchmark call that produced the profile.
 */
TrainArtifacts trainFromProfile(const BenchmarkSpec &spec,
                                BranchProfile profile,
                                const VanguardOptions &opts);

/**
 * Everything that is computed once per (benchmark, width) and shared
 * read-only across all REF-seed simulations: the TRAIN profile and
 * selection, both compiled configurations, and the static-shape
 * metrics (ALPBB/PHI) of the untransformed kernel. Seed-independent
 * by construction — see CompiledConfig.
 */
struct BenchmarkArtifacts
{
    TrainArtifacts train;
    CompiledConfig base;
    CompiledConfig exp;
    double alpbb = 0.0; ///< avg loads per hot basic block
    double phi = 0.0;   ///< % hoistable insts in successor blocks
};

/**
 * Compile both configurations (and the static-shape metrics) from an
 * existing TRAIN pass. Training is width-independent, so one
 * TrainArtifacts may feed compileBenchmark at several widths.
 */
BenchmarkArtifacts compileBenchmark(const BenchmarkSpec &spec,
                                    TrainArtifacts train,
                                    const VanguardOptions &opts);

/** trainBenchmark + compileBenchmark in one call. */
BenchmarkArtifacts prepareBenchmark(const BenchmarkSpec &spec,
                                    const VanguardOptions &opts);

/**
 * Compile one configuration of the benchmark (the IR pipeline:
 * superblock pass, optional decomposition, list scheduling, layout).
 * The returned program is seed-independent; pair it with any REF
 * input's memory image.
 */
CompiledConfig compileConfig(const BenchmarkSpec &spec,
                             const TrainArtifacts &train,
                             bool decomposed,
                             const VanguardOptions &opts,
                             DecomposeStats *dstats_out = nullptr);

/** Full evaluation for one REF input: baseline vs experimental.
 *  Thin wrapper over prepareBenchmark + evaluateWithArtifacts for
 *  single-seed callers; many-seed callers should prepare once. */
BenchmarkOutcome evaluateBenchmark(const BenchmarkSpec &spec,
                                   const VanguardOptions &opts,
                                   uint64_t ref_seed);

/** Evaluate one REF input against pre-built compile artifacts. */
BenchmarkOutcome evaluateWithArtifacts(const BenchmarkSpec &spec,
                                       const BenchmarkArtifacts &art,
                                       const VanguardOptions &opts,
                                       uint64_t ref_seed);

/**
 * Derive a BenchmarkOutcome from already-run simulations — the pure
 * (artifacts, base stats, exp stats) -> metrics step. The parallel
 * runner simulates in worker threads and assembles outcomes with this
 * on one thread, in deterministic index order.
 */
BenchmarkOutcome assembleOutcome(const BenchmarkSpec &spec,
                                 const BenchmarkArtifacts &art,
                                 SimStats base_stats, SimStats exp_stats);

/** Averages across REF inputs (paper Figs. 8/10/12/13 vs 9/11). */
struct SeedSummary
{
    std::string name;
    double meanSpeedupPct = 0.0;   ///< geomean over surviving REF inputs
    double bestSpeedupPct = 0.0;   ///< best single REF input
    std::vector<BenchmarkOutcome> perSeed; ///< surviving seeds, in order

    /** REF inputs whose jobs failed (see core/runner.hh); kNumRefSeeds
     *  when the benchmark's train/compile failed outright. */
    unsigned failedSeeds = 0;
};

SeedSummary evaluateBenchmarkAllRefs(const BenchmarkSpec &spec,
                                     const VanguardOptions &opts);

/** Simulate a compiled configuration on one REF input. */
SimStats simulateConfig(const BenchmarkSpec &spec,
                        const CompiledConfig &config,
                        const VanguardOptions &opts, uint64_t ref_seed,
                        bool collect_branch_stalls = false);

/**
 * Simulate a compiled configuration on several REF inputs through one
 * batched fast-path loop (uarch simulateBatch): each seed becomes a
 * lane with its own memory image, predictor, and (for oracle
 * predictors on decomposed code) pre-recorded PREDICT outcomes —
 * exactly the per-seed state simulateConfig builds. Per-lane results
 * are bit-identical to solo simulateConfig calls, and a lane that
 * raises SimError fails in its own slot without disturbing the others.
 * Lockstep runs cannot batch (the checker holds per-run golden state);
 * callers gate on !opts.lockstep, asserted here.
 */
std::vector<BatchLaneResult>
simulateConfigBatch(const BenchmarkSpec &spec,
                    const CompiledConfig &config,
                    const VanguardOptions &opts,
                    const std::vector<uint64_t> &ref_seeds,
                    bool collect_branch_stalls = false);

} // namespace vanguard

#endif // VANGUARD_CORE_VANGUARD_HH
