#include "compiler/decompose.hh"

#include <map>

#include "compiler/hoist.hh"
#include "ir/analysis.hh"
#include "support/logging.hh"

namespace vanguard {

namespace {

/** Copy an instruction, assigning a fresh id. */
Instruction
cloneInst(const Instruction &inst, Function &fn)
{
    Instruction copy = inst;
    copy.id = fn.nextInstId();
    return copy;
}

/** Find the block whose terminator is the BR with the given id. */
BlockId
findBranchBlock(const Function &fn, InstId branch)
{
    for (const auto &bb : fn.blocks()) {
        if (bb.hasTerminator() && bb.terminator().id == branch &&
            bb.terminator().op == Opcode::BR) {
            return bb.id;
        }
    }
    return kNoBlock;
}

/**
 * Compute the condition slice of block A: body indices of instructions
 * that feed only the branch condition and can legally move below the
 * rest of A (into the resolution blocks).
 */
std::vector<size_t>
computeConditionSlice(const BasicBlock &a, RegId cond, unsigned max_depth)
{
    size_t body_n = a.bodySize();
    std::vector<bool> in_slice(body_n, false);
    RegSet needed;
    needed.set(cond);

    RegSet written_below;   // by non-slice insts below the scan point
    RegSet read_below;      // by non-slice insts below the scan point
    bool store_below = false;
    unsigned count = 0;

    for (size_t k = body_n; k > 0; --k) {
        size_t i = k - 1;
        const Instruction &inst = a.insts[i];
        bool writes_needed =
            inst.writesDst() && needed.test(inst.dst);

        if (writes_needed) {
            // Whether taken or not, this is the reaching def of that
            // register; earlier writers are dead to the slice.
            needed.reset(inst.dst);

            bool eligible =
                count < max_depth &&
                inst.op != Opcode::DIV &&             // may fault
                !(inst.isLoad() && store_below) &&    // alias hazard
                !read_below.test(inst.dst) &&         // non-slice use
                (instUses(inst) & written_below).none(); // WAR
            if (eligible) {
                in_slice[i] = true;
                needed |= instUses(inst);
                ++count;
                continue;
            }
        }
        written_below |= instDefs(inst);
        read_below |= instUses(inst);
        if (inst.isStore())
            store_below = true;
    }

    std::vector<size_t> slice;
    for (size_t i = 0; i < body_n; ++i)
        if (in_slice[i])
            slice.push_back(i);
    return slice;
}

/** Hoisted-code emission result for one predicted path. */
struct SpeculativeCopy
{
    std::vector<Instruction> insts;             ///< renamed clones
    std::vector<std::pair<RegId, RegId>> commits; ///< (arch, temp) moves
};

/**
 * Clone the hoist-planned instructions of `src`, renaming every def
 * into a temp register from the pool and converting loads to LD_S.
 * Returns nullopt-like empty copy if the pool is too small.
 */
SpeculativeCopy
makeSpeculativeCopy(Function &fn, const BasicBlock &src,
                    const HoistPlan &plan,
                    const std::vector<RegId> &pool, size_t pool_start)
{
    SpeculativeCopy out;
    std::map<RegId, RegId> rename;
    size_t next_temp = pool_start;

    for (size_t idx : plan.indices) {
        if (next_temp >= pool.size())
            break; // out of temps: hoist fewer instructions
        Instruction copy = cloneInst(src.insts[idx], fn);
        for (RegId *srcReg : {&copy.src1, &copy.src2, &copy.src3}) {
            auto it = *srcReg == kNoReg ? rename.end()
                                        : rename.find(*srcReg);
            if (it != rename.end())
                *srcReg = it->second;
        }
        vg_assert(copy.writesDst(), "hoistable insts define a register");
        RegId temp = pool[next_temp++];
        rename[copy.dst] = temp;
        out.commits.emplace_back(copy.dst, temp);
        copy.dst = temp;
        if (copy.op == Opcode::LD)
            copy.op = Opcode::LD_S;
        out.insts.push_back(copy);
    }
    return out;
}

/**
 * Build the "rest" block for a successor: commit MOVs, then the
 * successor's non-hoisted body instructions, then a clone of its
 * terminator. Returns the instructions (block is created by caller).
 */
std::vector<Instruction>
makeRestInsts(Function &fn, const BasicBlock &succ, const HoistPlan &plan,
              const SpeculativeCopy &copy)
{
    std::vector<Instruction> insts;
    for (auto [arch, temp] : copy.commits) {
        Instruction mv;
        mv.op = Opcode::MOV;
        mv.id = fn.nextInstId();
        mv.dst = arch;
        mv.src1 = temp;
        insts.push_back(mv);
    }
    std::vector<bool> hoisted(succ.insts.size(), false);
    for (size_t i = 0; i < copy.insts.size(); ++i)
        hoisted[plan.indices[i]] = true;
    for (size_t i = 0; i < succ.bodySize(); ++i)
        if (!hoisted[i])
            insts.push_back(cloneInst(succ.insts[i], fn));
    insts.push_back(cloneInst(succ.terminator(), fn));
    return insts;
}

} // namespace

std::vector<RegId>
freeTempPool(const Function &fn)
{
    bool used[kNumRegs] = {};
    for (const auto &bb : fn.blocks()) {
        for (const auto &inst : bb.insts) {
            if (inst.writesDst())
                used[inst.dst] = true;
            for (RegId src : {inst.src1, inst.src2, inst.src3})
                if (src != kNoReg)
                    used[src] = true;
        }
    }
    std::vector<RegId> pool;
    for (unsigned t = 0; t < kNumTempRegs; ++t)
        if (!used[tempReg(t)])
            pool.push_back(tempReg(t));
    return pool;
}

bool
decomposeBranch(Function &fn, InstId branch,
                const std::vector<RegId> &temp_pool,
                const DecomposeOptions &opts, DecomposeStats &stats)
{
    ++stats.attempted;

    BlockId a_id = findBranchBlock(fn, branch);
    if (a_id == kNoBlock)
        return false;
    // Copies: fn.addBlock() below invalidates block references.
    Instruction br = fn.block(a_id).terminator();
    BlockId t_id = br.takenTarget;
    BlockId f_id = br.fallTarget;
    if (t_id == f_id || t_id == a_id || f_id == a_id)
        return false;
    if (temp_pool.empty())
        return false; // need at least the negated-condition temp
    RegId cond = br.src1;

    std::vector<size_t> slice =
        computeConditionSlice(fn.block(a_id), cond, opts.maxSliceDepth);

    // Temp pool layout: pool[0] holds the negated condition; the rest
    // is shared by both paths' renames (their live ranges are on
    // mutually exclusive predicted paths).
    RegId nc = temp_pool[0];

    HoistPlan hb = computeHoistPlan(fn.block(f_id),
                                    opts.maxHoistPerPath);
    HoistPlan hc = computeHoistPlan(fn.block(t_id),
                                    opts.maxHoistPerPath);
    SpeculativeCopy copy_b =
        makeSpeculativeCopy(fn, fn.block(f_id), hb, temp_pool, 1);
    SpeculativeCopy copy_c =
        makeSpeculativeCopy(fn, fn.block(t_id), hc, temp_pool, 1);

    if (slice.empty() && copy_b.insts.empty() && copy_c.insts.empty())
        return false; // nothing to overlap; not profitable

    // --- create new blocks (ids only; fill below) ---------------------
    BlockId ba = fn.addBlock("ba'");
    BlockId ca = fn.addBlock("ca'");
    BlockId f_rest = copy_b.insts.empty()
        ? kNoBlock : fn.addBlock("f_rest");
    BlockId t_rest = copy_c.insts.empty()
        ? kNoBlock : fn.addBlock("t_rest");

    // --- rewrite A: drop the slice, replace br with PREDICT -----------
    {
        BasicBlock &a = fn.block(a_id);
        std::vector<bool> in_slice(a.insts.size(), false);
        for (size_t i : slice)
            in_slice[i] = true;
        std::vector<Instruction> new_a;
        std::vector<Instruction> slice_insts;
        for (size_t i = 0; i < a.bodySize(); ++i) {
            if (in_slice[i])
                slice_insts.push_back(a.insts[i]);
            else
                new_a.push_back(a.insts[i]);
        }
        Instruction predict;
        predict.op = Opcode::PREDICT;
        predict.id = fn.nextInstId();
        predict.takenTarget = ca;
        predict.fallTarget = ba;
        predict.origBranch = branch;
        new_a.push_back(predict);
        a.insts = std::move(new_a);

        // --- BA' (predicted not-taken path) ---------------------------
        BasicBlock &bba = fn.block(ba);
        for (const Instruction &si : slice_insts)
            bba.insts.push_back(si); // moved, ids preserved
        for (const Instruction &hi : copy_b.insts)
            bba.insts.push_back(hi);
        Instruction res_b;
        res_b.op = Opcode::RESOLVE;
        res_b.id = fn.nextInstId();
        res_b.src1 = cond;
        res_b.takenTarget = t_id;   // Correct-C: all of T
        res_b.fallTarget = copy_b.insts.empty() ? f_id : f_rest;
        res_b.origBranch = branch;
        res_b.resolvePathTaken = false;
        bba.insts.push_back(res_b);

        // --- CA' (predicted taken path) -------------------------------
        BasicBlock &bca = fn.block(ca);
        for (const Instruction &si : slice_insts)
            bca.insts.push_back(cloneInst(si, fn));
        Instruction neg;
        neg.op = Opcode::CMPEQ;
        neg.id = fn.nextInstId();
        neg.dst = nc;
        neg.src1 = cond;
        neg.imm = 0; // nc = (cond == 0)
        bca.insts.push_back(neg);
        for (const Instruction &hi : copy_c.insts)
            bca.insts.push_back(hi);
        Instruction res_c;
        res_c.op = Opcode::RESOLVE;
        res_c.id = fn.nextInstId();
        res_c.src1 = nc;
        res_c.takenTarget = f_id;   // Correct-B: all of F
        res_c.fallTarget = copy_c.insts.empty() ? t_id : t_rest;
        res_c.origBranch = branch;
        res_c.resolvePathTaken = true;
        bca.insts.push_back(res_c);

        stats.sliceInsts += slice_insts.size();
    }

    // --- rest blocks: commit MOVs + non-hoisted successor code --------
    if (f_rest != kNoBlock) {
        auto insts = makeRestInsts(fn, fn.block(f_id), hb, copy_b);
        fn.block(f_rest).insts = std::move(insts);
    }
    if (t_rest != kNoBlock) {
        auto insts = makeRestInsts(fn, fn.block(t_id), hc, copy_c);
        fn.block(t_rest).insts = std::move(insts);
    }

    stats.hoistedInsts += copy_b.insts.size() + copy_c.insts.size();
    stats.commitMovs += copy_b.commits.size() + copy_c.commits.size();
    for (const auto &hi : copy_b.insts)
        stats.hoistedIds.push_back(hi.id);
    for (const auto &hi : copy_c.insts)
        stats.hoistedIds.push_back(hi.id);
    ++stats.converted;
    return true;
}

DecomposeStats
decomposeBranches(Function &fn, const std::vector<InstId> &branches,
                  const DecomposeOptions &opts)
{
    DecomposeStats stats;
    std::vector<RegId> pool = freeTempPool(fn);
    for (InstId branch : branches)
        decomposeBranch(fn, branch, pool, opts, stats);

    std::string err = fn.verify();
    vg_assert(err.empty(), "decompose broke the CFG: %s", err.c_str());
    return stats;
}

} // namespace vanguard
