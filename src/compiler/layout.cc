#include "compiler/layout.hh"

#include <sstream>

#include "exec/semantics.hh"
#include "support/logging.hh"

namespace vanguard {

std::string
Program::toString() const
{
    std::ostringstream os;
    for (const auto &li : insts_) {
        os << std::hex << "0x" << li.pc << std::dec << ":  "
           << li.inst.toString();
        if (li.inst.isBranch())
            os << "   ; taken -> 0x" << std::hex << li.takenPc
               << std::dec;
        os << "\n";
    }
    return os.str();
}

Program
linearize(const Function &fn)
{
    std::string err = fn.verify();
    vg_assert(err.empty(), "linearize: invalid function: %s",
              err.c_str());

    // Pass 1: choose a block order that honors fall-through edges.
    size_t n = fn.numBlocks();
    std::vector<bool> placed(n, false);
    std::vector<BlockId> order;
    order.reserve(n);

    BlockId next_seed = 0;
    BlockId cur = 0;
    for (;;) {
        placed[cur] = true;
        order.push_back(cur);

        const Instruction &term = fn.block(cur).terminator();
        BlockId want = kNoBlock;
        if (term.op == Opcode::BR || term.op == Opcode::PREDICT ||
            term.op == Opcode::RESOLVE) {
            want = term.fallTarget;
        } else if (term.op == Opcode::JMP) {
            want = term.takenTarget;
        }
        if (want != kNoBlock && !placed[want]) {
            cur = want;
            continue;
        }
        // Start a new chain at the lowest unplaced block.
        while (next_seed < n && placed[next_seed])
            ++next_seed;
        if (next_seed >= n)
            break;
        cur = next_seed;
    }

    // Pass 2: emit instructions (indices only; addresses are linear).
    // Layout-order position of each block, for adjacency tests.
    std::vector<size_t> pos(n);
    for (size_t i = 0; i < order.size(); ++i)
        pos[order[i]] = i;

    Program prog;
    prog.block_start_.assign(n, 0);

    for (size_t i = 0; i < order.size(); ++i) {
        BlockId b = order[i];
        const BasicBlock &bb = fn.block(b);
        prog.block_start_[b] = prog.insts_.size();
        bool last_in_layout = (i + 1 == order.size());
        BlockId next_block = last_in_layout ? kNoBlock : order[i + 1];

        for (const Instruction &inst : bb.insts) {
            if (inst.op == Opcode::JMP && inst.takenTarget == next_block)
                continue; // fall-through; elide the jump
            LaidInst li;
            li.inst = inst;
            li.srcBlock = b;
            prog.insts_.push_back(li);

            // A conditional fall-through that is not adjacent needs a
            // synthesized unconditional jump after the branch.
            if ((inst.op == Opcode::BR || inst.op == Opcode::PREDICT ||
                 inst.op == Opcode::RESOLVE) &&
                inst.fallTarget != next_block) {
                LaidInst jmp;
                jmp.inst.op = Opcode::JMP;
                jmp.inst.id = kNoInst;
                jmp.inst.takenTarget = inst.fallTarget;
                jmp.srcBlock = b;
                prog.insts_.push_back(jmp);
            }
        }
    }

    // Pass 3: resolve target addresses.
    for (size_t i = 0; i < prog.insts_.size(); ++i) {
        LaidInst &li = prog.insts_[i];
        li.pc = kCodeBase + i * kInstBytes;
        if (li.inst.isBranch()) {
            li.takenPc = kCodeBase +
                         prog.block_start_[li.inst.takenTarget] *
                             kInstBytes;
        }
    }
    return prog;
}

ProgramExecutor::ProgramExecutor(const Program &prog, Memory &mem)
    : prog_(prog), mem_(mem)
{
    predict_hook_ = [](const LaidInst &) { return false; };
}

void
ProgramExecutor::setPredictHook(PredictHook hook)
{
    vg_assert(hook != nullptr);
    predict_hook_ = std::move(hook);
}

ProgramExecutor::StepInfo
ProgramExecutor::step()
{
    StepInfo info;
    if (halted_) {
        info.halted = true;
        return info;
    }

    size_t index = prog_.indexOf(pc_);
    vg_assert(index < prog_.size(), "pc 0x%llx out of program",
              static_cast<unsigned long long>(pc_));
    const LaidInst &li = prog_.at(index);
    info.inst = &li;

    switch (li.inst.op) {
      case Opcode::HALT:
        halted_ = true;
        info.halted = true;
        return info;
      case Opcode::JMP:
        pc_ = li.takenPc;
        info.taken = true;
        return info;
      case Opcode::PREDICT: {
        bool dir = predict_hook_(li);
        info.taken = dir;
        pc_ = dir ? li.takenPc : pc_ + kInstBytes;
        return info;
      }
      case Opcode::BR:
      case Opcode::RESOLVE: {
        OpResult r = evaluate(li.inst, regs_, mem_);
        info.taken = r.taken;
        pc_ = r.taken ? li.takenPc : pc_ + kInstBytes;
        return info;
      }
      default:
        break;
    }

    OpResult r = evaluate(li.inst, regs_, mem_);
    info.memAddr = r.memAddr;
    if (r.fault) {
        faulted_ = true;
        halted_ = true;
        info.fault = true;
        return info;
    }
    if (r.isStore) {
        mem_.write64(r.memAddr, r.storeValue);
        if (record_stores_)
            store_log_.emplace_back(r.memAddr, r.storeValue);
        if (store_hook_)
            store_hook_(r.memAddr, r.storeValue);
    } else if (li.inst.writesDst()) {
        regs_[li.inst.dst] = r.value;
    }
    pc_ += kInstBytes;
    return info;
}

uint64_t
ProgramExecutor::run(uint64_t max_insts)
{
    uint64_t executed = 0;
    while (!halted_ && executed < max_insts) {
        step();
        ++executed;
    }
    return executed;
}

} // namespace vanguard
