/**
 * @file
 * Superblock-style speculation for *highly biased* branches — the
 * upper-left quadrant of the paper's Figure 1 taxonomy, which both the
 * baseline and the experimental configuration receive (it is part of
 * any -O3+PGO-class code generator). Complements decomposition, which
 * targets the predictable-but-unbiased quadrant.
 *
 * The pass hoists instructions from a branch's dominant successor
 * above the branch when it is safe without compensation code:
 * destination dead on the other path, no faults (loads become LD_S),
 * the successor has no other predecessors, and no dependence on
 * skipped instructions.
 */

#ifndef VANGUARD_COMPILER_SUPERBLOCK_HH
#define VANGUARD_COMPILER_SUPERBLOCK_HH

#include "ir/function.hh"
#include "profile/branch_profile.hh"

namespace vanguard {

struct SuperblockOptions
{
    double biasThreshold = 0.95;    ///< minimum bias to speculate over
    uint64_t minExecs = 64;
    unsigned maxHoist = 8;
};

struct SuperblockStats
{
    unsigned branchesSpeculated = 0;
    uint64_t instsHoisted = 0;
};

/** Apply biased-branch speculation across fn. */
SuperblockStats hoistAboveBiasedBranches(
    Function &fn, const BranchProfile &profile,
    const SuperblockOptions &opts = {});

} // namespace vanguard

#endif // VANGUARD_COMPILER_SUPERBLOCK_HH
