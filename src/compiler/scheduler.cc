#include "compiler/scheduler.hh"

#include <algorithm>

#include "ir/analysis.hh"
#include "support/logging.hh"

namespace vanguard {

namespace {

struct DagNode
{
    std::vector<size_t> succs;
    unsigned preds_left = 0;
    unsigned pathLength = 0;    ///< latency-weighted height to block end
};

unsigned
portsFor(FuClass cls, const ScheduleOptions &opts)
{
    switch (cls) {
      case FuClass::Mem:
        return opts.memPorts;
      case FuClass::IntAlu:
        return opts.intPorts;
      case FuClass::Fp:
        return opts.fpPorts;
      case FuClass::None:
        return opts.width;
    }
    return opts.width;
}

} // namespace

bool
scheduleBlock(BasicBlock &bb, const ScheduleOptions &opts)
{
    size_t n = bb.bodySize();
    if (n < 2)
        return false;

    // Build the dependence DAG over the block body.
    std::vector<DagNode> dag(n);
    auto add_edge = [&](size_t from, size_t to) {
        dag[from].succs.push_back(to);
        ++dag[to].preds_left;
    };

    for (size_t i = 0; i < n; ++i) {
        const Instruction &a = bb.insts[i];
        RegSet a_defs = instDefs(a);
        RegSet a_uses = instUses(a);
        for (size_t j = i + 1; j < n; ++j) {
            const Instruction &b = bb.insts[j];
            bool dep = (a_defs & instUses(b)).any() ||   // RAW
                       (a_uses & instDefs(b)).any() ||   // WAR
                       (a_defs & instDefs(b)).any();     // WAW
            // Memory ordering: stores are ordering points.
            if (!dep && a.isMemRef() && b.isMemRef() &&
                (a.isStore() || b.isStore())) {
                dep = true;
            }
            if (dep)
                add_edge(i, j);
        }
    }

    // Priority: critical-path height (sum of latencies to the end).
    for (size_t k = n; k > 0; --k) {
        size_t i = k - 1;
        unsigned best = 0;
        for (size_t s : dag[i].succs)
            best = std::max(best, dag[s].pathLength);
        dag[i].pathLength = best + bb.insts[i].latency();
    }

    // Critical-path-first topological ordering.
    //
    // An in-order superscalar issues greedily in program order and
    // blocks at the first not-ready instruction, so the best static
    // order front-loads the *longest dependence chains* (loads, the
    // condition slice's producers). A cycle-packing scheduler — the
    // right choice for VLIW slotting — is actively harmful here: it
    // fills early slots with short ready ops whose operands may arrive
    // late at run time (e.g. a resolution slice waiting on a missing
    // load), and head-of-line blocking then stalls the independent
    // long-latency work queued behind them. Ordering purely by
    // latency-weighted height places speculatively hoisted loads ahead
    // of the branch-resolution slice, which is exactly the overlap the
    // Decomposed Branch Transformation exists to create (paper Sec. 3:
    // "overlap the pushed down contents of block A with the hoisted
    // contents of blocks B and C").
    std::vector<size_t> ready;
    for (size_t i = 0; i < n; ++i)
        if (dag[i].preds_left == 0)
            ready.push_back(i);

    std::vector<size_t> order;
    order.reserve(n);
    while (!ready.empty()) {
        size_t best_pos = 0;
        for (size_t p = 1; p < ready.size(); ++p) {
            size_t i = ready[p];
            size_t b = ready[best_pos];
            if (dag[i].pathLength > dag[b].pathLength ||
                (dag[i].pathLength == dag[b].pathLength && i < b)) {
                best_pos = p;
            }
        }
        size_t i = ready[best_pos];
        ready.erase(ready.begin() +
                    static_cast<std::ptrdiff_t>(best_pos));
        order.push_back(i);
        for (size_t s : dag[i].succs)
            if (--dag[s].preds_left == 0)
                ready.push_back(s);
    }
    vg_assert(order.size() == n, "scheduler lost instructions");

    bool changed = false;
    for (size_t i = 0; i < n; ++i) {
        if (order[i] != i) {
            changed = true;
            break;
        }
    }
    if (!changed)
        return false;

    std::vector<Instruction> new_body;
    new_body.reserve(bb.insts.size());
    for (size_t i : order)
        new_body.push_back(bb.insts[i]);
    new_body.push_back(bb.terminator());
    bb.insts = std::move(new_body);
    return true;
}

unsigned
scheduleFunction(Function &fn, const ScheduleOptions &opts)
{
    unsigned changed = 0;
    for (auto &bb : fn.blocks())
        if (scheduleBlock(bb, opts))
            ++changed;
    return changed;
}

} // namespace vanguard
