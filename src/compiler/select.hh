/**
 * @file
 * Profile-guided branch selection for the Decomposed Branch
 * Transformation. The paper's heuristic (Sec. 5): transform forward
 * branches whose predictability exceeds bias by at least 5%.
 */

#ifndef VANGUARD_COMPILER_SELECT_HH
#define VANGUARD_COMPILER_SELECT_HH

#include <vector>

#include "ir/function.hh"
#include "profile/branch_profile.hh"

namespace vanguard {

struct SelectionOptions
{
    /** predictability - bias threshold ("at least 5%"). */
    double minExposed = 0.05;

    /** Ignore branches colder than this dynamic count. */
    uint64_t minExecs = 64;

    /** Don't convert hopelessly unpredictable branches: the resolve
     *  would redirect too often and eat the gains. */
    double minPredictability = 0.70;

    /** Backward (loop) branches are handled by classic loop
     *  transformations, not decomposition (paper footnote 1). */
    bool forwardOnly = true;
};

/**
 * Rank-and-filter the profiled branches, returning the InstIds to
 * convert in descending execution-count order.
 */
std::vector<InstId> selectBranches(const Function &fn,
                                   const BranchProfile &profile,
                                   const SelectionOptions &opts = {});

/** Fraction of profiled *forward static* branches selected (PBC). */
double convertedBranchFraction(const BranchProfile &profile,
                               const std::vector<InstId> &selected);

} // namespace vanguard

#endif // VANGUARD_COMPILER_SELECT_HH
