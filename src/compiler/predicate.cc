#include "compiler/predicate.hh"

#include <map>
#include <optional>

#include "compiler/decompose.hh" // freeTempPool
#include "ir/analysis.hh"
#include "support/logging.hh"

namespace vanguard {

namespace {

/** A hammock side eligible for predication. */
struct Side
{
    BlockId block = kNoBlock;
    BlockId join = kNoBlock;
};

/** Check whether a side block can execute unconditionally. */
bool
sideEligible(const Function &fn, BlockId b, unsigned max_insts,
             const std::vector<std::vector<BlockId>> &preds)
{
    const BasicBlock &bb = fn.block(b);
    if (bb.bodySize() > max_insts)
        return false;
    if (preds[b].size() != 1)
        return false;
    if (bb.terminator().op != Opcode::JMP)
        return false;
    for (size_t i = 0; i < bb.bodySize(); ++i) {
        const Instruction &inst = bb.insts[i];
        if (inst.isStore() || inst.op == Opcode::DIV)
            return false;
        if (!inst.writesDst())
            return false; // NOP etc. — just bail, keep it simple
    }
    return true;
}

/** Clone a side's body, renaming defs to temps. Returns the final
 *  temp (or original reg) holding each architectural def. */
std::vector<Instruction>
cloneSide(Function &fn, const BasicBlock &side,
          const std::vector<RegId> &pool, size_t &next_temp,
          std::map<RegId, RegId> &finals)
{
    std::vector<Instruction> out;
    std::map<RegId, RegId> rename;
    for (size_t i = 0; i < side.bodySize(); ++i) {
        if (next_temp >= pool.size())
            return {}; // out of temps; caller aborts this hammock
        Instruction copy = side.insts[i];
        copy.id = fn.nextInstId();
        for (RegId *src : {&copy.src1, &copy.src2, &copy.src3}) {
            auto it = *src == kNoReg ? rename.end() : rename.find(*src);
            if (it != rename.end())
                *src = it->second;
        }
        RegId temp = pool[next_temp++];
        rename[copy.dst] = temp;
        finals[copy.dst] = temp;
        copy.dst = temp;
        if (copy.op == Opcode::LD)
            copy.op = Opcode::LD_S;
        out.push_back(copy);
    }
    return out;
}

} // namespace

PredicationStats
ifConvertBranches(Function &fn, const std::vector<InstId> &branches,
                  const PredicationOptions &opts)
{
    PredicationStats stats;
    std::vector<RegId> pool = freeTempPool(fn);

    for (InstId branch : branches) {
        auto preds = fn.predecessors();

        BlockId a_id = kNoBlock;
        for (const auto &bb : fn.blocks()) {
            if (bb.hasTerminator() && bb.terminator().id == branch &&
                bb.terminator().op == Opcode::BR) {
                a_id = bb.id;
                break;
            }
        }
        if (a_id == kNoBlock)
            continue;

        Instruction br = fn.block(a_id).terminator();
        BlockId t_id = br.takenTarget;
        BlockId f_id = br.fallTarget;
        if (t_id == f_id || t_id == a_id || f_id == a_id)
            continue;

        bool t_ok = sideEligible(fn, t_id, opts.maxSideInsts, preds);
        bool f_ok = sideEligible(fn, f_id, opts.maxSideInsts, preds);

        BlockId join = kNoBlock;
        bool diamond = false;
        if (t_ok && f_ok &&
            fn.block(t_id).terminator().takenTarget ==
                fn.block(f_id).terminator().takenTarget) {
            join = fn.block(t_id).terminator().takenTarget;
            diamond = true;
        } else if (t_ok &&
                   fn.block(t_id).terminator().takenTarget == f_id) {
            join = f_id; // triangle: taken side only
        } else {
            continue;
        }
        // The join must be a genuinely distinct continuation (for a
        // triangle the join IS the fall-through block, which is fine).
        if (join == a_id || join == t_id ||
            (diamond && join == f_id)) {
            continue;
        }

        size_t next_temp = 0;
        std::map<RegId, RegId> t_finals, f_finals;
        std::vector<Instruction> t_code =
            cloneSide(fn, fn.block(t_id), pool, next_temp, t_finals);
        if (t_code.empty() && fn.block(t_id).bodySize() > 0)
            continue; // temp exhaustion
        std::vector<Instruction> f_code;
        if (diamond) {
            f_code = cloneSide(fn, fn.block(f_id), pool, next_temp,
                               f_finals);
            if (f_code.empty() && fn.block(f_id).bodySize() > 0)
                continue;
        }

        // Rewrite A: body + both sides + SELECT merges + JMP join.
        BasicBlock &a = fn.block(a_id);
        a.insts.pop_back(); // drop the BR
        for (auto &inst : t_code)
            a.insts.push_back(inst);
        for (auto &inst : f_code)
            a.insts.push_back(inst);

        std::map<RegId, std::pair<RegId, RegId>> merges;
        for (auto [arch, temp] : t_finals)
            merges[arch] = {temp, arch};
        for (auto [arch, temp] : f_finals) {
            auto it = merges.find(arch);
            if (it != merges.end())
                it->second.second = temp;
            else
                merges[arch] = {arch, temp};
        }
        for (auto &[arch, pair] : merges) {
            Instruction sel;
            sel.op = Opcode::SELECT;
            sel.id = fn.nextInstId();
            sel.dst = arch;
            sel.src1 = br.src1;
            sel.src2 = pair.first;   // value if condition true (taken)
            sel.src3 = pair.second;  // value if condition false
            a.insts.push_back(sel);
            ++stats.selectsInserted;
        }

        Instruction jmp;
        jmp.op = Opcode::JMP;
        jmp.id = fn.nextInstId();
        jmp.takenTarget = join;
        a.insts.push_back(jmp);
        ++stats.converted;
    }

    std::string err = fn.verify();
    vg_assert(err.empty(), "if-conversion broke the CFG: %s",
              err.c_str());
    return stats;
}

} // namespace vanguard
