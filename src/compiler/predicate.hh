/**
 * @file
 * If-conversion (predication) of simple hammocks — the classic answer
 * for the *unbiased, unpredictable* quadrant of the paper's Figure 1,
 * implemented as a comparison baseline for the abl_vs_predication
 * benchmark.
 *
 * Diamonds (A -> {T, F} -> J) and triangles (A -> {T, J}) whose sides
 * are small, store-free, and fault-free (loads become LD_S) are
 * converted to straight-line code: both sides execute into temp
 * registers and SELECTs merge the results — converting the control
 * dependence into a data dependence.
 */

#ifndef VANGUARD_COMPILER_PREDICATE_HH
#define VANGUARD_COMPILER_PREDICATE_HH

#include "ir/function.hh"

namespace vanguard {

struct PredicationOptions
{
    unsigned maxSideInsts = 6;  ///< max body size of each hammock side
};

struct PredicationStats
{
    unsigned converted = 0;
    uint64_t selectsInserted = 0;
};

/**
 * If-convert every eligible hammock whose branch id is in `branches`
 * (pass all branch ids to convert everything convertible).
 */
PredicationStats ifConvertBranches(Function &fn,
                                   const std::vector<InstId> &branches,
                                   const PredicationOptions &opts = {});

} // namespace vanguard

#endif // VANGUARD_COMPILER_PREDICATE_HH
