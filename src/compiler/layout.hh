/**
 * @file
 * Code layout: linearize a Function's CFG into an addressed instruction
 * stream (the form the timing simulator fetches). Layout is where the
 * transformation's code-size side effects (paper Sec. 6.1, PISCS)
 * become real: every instruction occupies 4 bytes of I-cache-visible
 * address space.
 *
 * The linearizer chains blocks following fall-through edges so that
 * BR/PREDICT/RESOLVE not-taken paths are adjacent, inserts JMPs where a
 * required fall-through could not be honored, and elides JMPs whose
 * target ends up adjacent anyway.
 */

#ifndef VANGUARD_COMPILER_LAYOUT_HH
#define VANGUARD_COMPILER_LAYOUT_HH

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "exec/memory.hh"
#include "ir/function.hh"

namespace vanguard {

inline constexpr uint64_t kCodeBase = 0x10000;
inline constexpr unsigned kInstBytes = 4;

/** One laid-out instruction with resolved control-flow addresses. */
struct LaidInst
{
    Instruction inst;
    uint64_t pc = 0;
    uint64_t takenPc = 0;   ///< target address for taken control flow
    BlockId srcBlock = kNoBlock;
};

/** An addressed program: contiguous instructions from kCodeBase. */
class Program
{
  public:
    const LaidInst &at(size_t index) const { return insts_[index]; }
    size_t size() const { return insts_.size(); }

    size_t
    indexOf(uint64_t pc) const
    {
        return static_cast<size_t>((pc - kCodeBase) / kInstBytes);
    }

    uint64_t codeBytes() const { return size() * kInstBytes; }

    /** Index of the first instruction of a block (layout order). */
    size_t blockStart(BlockId b) const { return block_start_[b]; }

    std::string toString() const;

    friend Program linearize(const Function &fn);

  private:
    std::vector<LaidInst> insts_;
    std::vector<size_t> block_start_;
};

/** Lay out fn; requires fn.verify() to pass. */
Program linearize(const Function &fn);

/**
 * Functional executor over a laid-out Program — the post-layout golden
 * model, used to validate the linearizer against the CFG interpreter
 * and reused (stepwise) by the timing simulator.
 */
class ProgramExecutor
{
  public:
    /** Everything the caller learns from one executed instruction. */
    struct StepInfo
    {
        const LaidInst *inst = nullptr;
        bool taken = false;         ///< control left fall-through path
        bool halted = false;
        bool fault = false;
        uint64_t memAddr = 0;       ///< valid for loads/stores
    };

    using PredictHook = std::function<bool(const LaidInst &)>;

    /** Observe every committed store (lockstep oracle tap). */
    using StoreHook = std::function<void(uint64_t addr, int64_t value)>;

    ProgramExecutor(const Program &prog, Memory &mem);

    /** Decide PREDICT directions; default always predicts not-taken. */
    void setPredictHook(PredictHook hook);

    void setStoreHook(StoreHook hook) { store_hook_ = std::move(hook); }

    int64_t reg(RegId r) const { return regs_[r]; }
    void setReg(RegId r, int64_t v) { regs_[r] = v; }
    const int64_t *regs() const { return regs_; }

    bool halted() const { return halted_; }
    uint64_t pc() const { return pc_; }

    /** Execute one instruction, updating architectural state. */
    StepInfo step();

    /** Run to completion (HALT/fault/limit); returns executed count. */
    uint64_t run(uint64_t max_insts = 100'000'000);

    /** Committed (addr, value) store stream, if recording. */
    void recordStores(bool enable) { record_stores_ = enable; }

    const std::vector<std::pair<uint64_t, int64_t>> &
    storeLog() const
    {
        return store_log_;
    }

    bool faulted() const { return faulted_; }

  private:
    const Program &prog_;
    Memory &mem_;
    int64_t regs_[kNumRegs] = {};
    uint64_t pc_ = kCodeBase;
    bool halted_ = false;
    bool faulted_ = false;
    PredictHook predict_hook_;
    StoreHook store_hook_;
    bool record_stores_ = false;
    std::vector<std::pair<uint64_t, int64_t>> store_log_;
};

} // namespace vanguard

#endif // VANGUARD_COMPILER_LAYOUT_HH
