#include "compiler/superblock.hh"

#include "compiler/hoist.hh"
#include "ir/analysis.hh"
#include "support/logging.hh"

namespace vanguard {

SuperblockStats
hoistAboveBiasedBranches(Function &fn, const BranchProfile &profile,
                         const SuperblockOptions &opts)
{
    SuperblockStats stats;
    auto preds = fn.predecessors();
    Liveness live(fn);

    for (auto &a : fn.blocks()) {
        if (!a.hasTerminator() || a.terminator().op != Opcode::BR)
            continue;
        const Instruction &br = a.terminator();
        const BranchStats *bs = profile.find(br.id);
        if (!bs || bs->execs < opts.minExecs ||
            bs->bias() < opts.biasThreshold) {
            continue;
        }

        bool likely_taken = bs->taken * 2 > bs->execs;
        BlockId s_id = likely_taken ? br.takenTarget : br.fallTarget;
        BlockId o_id = likely_taken ? br.fallTarget : br.takenTarget;
        if (s_id == o_id || s_id == a.id)
            continue;
        if (preds[s_id].size() != 1)
            continue; // other entries would miss the hoisted code

        BasicBlock &s = fn.block(s_id);
        HoistPlan plan = computeHoistPlan(s, opts.maxHoist);
        if (plan.empty())
            continue;

        const RegSet &other_live = live.liveIn(o_id);

        // Filter: safe without renaming only if the destination is
        // dead on the other path and unused by the branch itself.
        // Rejecting a plan member also invalidates later members that
        // would jump over it, so re-run the RAW/WAR/WAW checks against
        // the accumulated rejected set.
        std::vector<size_t> final_pick;
        RegSet rejected_defs;
        RegSet rejected_uses;
        for (size_t idx : plan.indices) {
            const Instruction &inst = s.insts[idx];
            vg_assert(inst.writesDst());
            RegSet defs = instDefs(inst);
            bool ok = !other_live.test(inst.dst) &&
                      inst.dst != br.src1 &&
                      (instUses(inst) & rejected_defs).none() &&  // RAW
                      (defs & rejected_uses).none() &&            // WAR
                      (defs & rejected_defs).none();              // WAW
            if (ok) {
                final_pick.push_back(idx);
            } else {
                rejected_defs |= defs;
                rejected_uses |= instUses(inst);
            }
        }
        if (final_pick.empty())
            continue;

        // Move the chosen instructions to the end of A's body.
        std::vector<bool> moved(s.insts.size(), false);
        for (size_t idx : final_pick)
            moved[idx] = true;

        std::vector<Instruction> hoisted;
        std::vector<Instruction> remaining;
        for (size_t i = 0; i < s.insts.size(); ++i) {
            if (moved[i]) {
                Instruction inst = s.insts[i];
                if (inst.op == Opcode::LD)
                    inst.op = Opcode::LD_S; // speculative on other path
                hoisted.push_back(inst);
            } else {
                remaining.push_back(s.insts[i]);
            }
        }
        s.insts = std::move(remaining);

        auto &a_insts = a.insts;
        a_insts.insert(a_insts.end() - 1, hoisted.begin(),
                       hoisted.end());

        ++stats.branchesSpeculated;
        stats.instsHoisted += hoisted.size();

        // Liveness changed; refresh for subsequent branches.
        live = Liveness(fn);
    }

    std::string err = fn.verify();
    vg_assert(err.empty(), "superblock pass broke the CFG: %s",
              err.c_str());
    return stats;
}

} // namespace vanguard
