/**
 * @file
 * Local list scheduler for in-order superscalar targets.
 *
 * Reorders each basic block's body (the terminator stays last) to
 * minimize in-order issue stalls: long-latency producers (loads, MUL,
 * FP) are moved as early as dependences allow so their latencies
 * overlap with independent work — the compiler half of the paper's
 * "code generated schedules" story. The Decomposed Branch
 * Transformation creates the *blocks* in which this scheduler can
 * finally overlap load latencies across what used to be a branch.
 *
 * Dependences honored: register RAW/WAR/WAW; loads may reorder with
 * loads but never with stores; stores never reorder with each other.
 * Resources honored: issue width and per-class FU ports per cycle.
 */

#ifndef VANGUARD_COMPILER_SCHEDULER_HH
#define VANGUARD_COMPILER_SCHEDULER_HH

#include "ir/function.hh"

namespace vanguard {

struct ScheduleOptions
{
    unsigned width = 4;     ///< target issue width
    unsigned memPorts = 2;
    unsigned intPorts = 2;
    unsigned fpPorts = 4;
};

/** Schedule one block's body in place. Returns true if reordered. */
bool scheduleBlock(BasicBlock &bb, const ScheduleOptions &opts);

/** Schedule every block of fn. Returns number of blocks reordered. */
unsigned scheduleFunction(Function &fn, const ScheduleOptions &opts);

} // namespace vanguard

#endif // VANGUARD_COMPILER_SCHEDULER_HH
