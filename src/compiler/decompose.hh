/**
 * @file
 * The Decomposed Branch Transformation (paper Sec. 3).
 *
 * For a selected conditional branch `br` in block A with taken
 * successor T and fall-through successor F, the transformation:
 *
 *  1. computes the branch's condition slice within A (the cmp and the
 *     instructions feeding only it) and removes it from A;
 *  2. replaces `br` with a PREDICT whose taken/fall targets are two new
 *     resolution blocks CA'/BA' (one per predicted direction);
 *  3. fills BA' with [slice][speculatively hoisted prefix of F, renamed
 *     into temp registers, loads converted to LD_S][RESOLVE cond];
 *     the RESOLVE's taken target is T in full (the "Correct-C"
 *     compensation path), its fall-through is F_rest;
 *  4. fills CA' symmetrically with the negated condition, hoisted
 *     prefix of T, RESOLVE targeting F in full ("Correct-B"),
 *     falling through to T_rest;
 *  5. creates F_rest/T_rest: commit MOVs (temp -> architectural reg)
 *     followed by the successor's non-hoisted instructions and a clone
 *     of its terminator.
 *
 * T and F themselves are left untouched, so they double as the
 * compensation blocks (they recompute the hoisted values directly into
 * architectural registers, exactly as the paper's Correct-B/Correct-C
 * "merely duplicate the hoisted instructions") and other predecessors
 * of T/F are unaffected.
 *
 * The two RESOLVEs created for one PREDICT match the paper's "two
 * resolve instructions associated with each predict instruction".
 */

#ifndef VANGUARD_COMPILER_DECOMPOSE_HH
#define VANGUARD_COMPILER_DECOMPOSE_HH

#include <cstdint>
#include <vector>

#include "ir/function.hh"

namespace vanguard {

struct DecomposeOptions
{
    unsigned maxHoistPerPath = 12;   ///< cap on speculated insts per path
    unsigned maxSliceDepth = 4;     ///< cap on condition-slice size
};

struct DecomposeStats
{
    unsigned attempted = 0;
    unsigned converted = 0;
    uint64_t sliceInsts = 0;        ///< static slice insts pushed down
    uint64_t hoistedInsts = 0;      ///< static insts speculated (both paths)
    uint64_t commitMovs = 0;        ///< temp->arch commit moves emitted

    /** InstIds of the speculative (hoisted) clones — the population
     *  whose dynamic executions form the paper's PDIH metric. */
    std::vector<InstId> hoistedIds;
};

/**
 * Decompose a single branch (identified by the InstId of its BR).
 *
 * @param fn         function, mutated in place.
 * @param branch     InstId of the BR terminator to convert.
 * @param temp_pool  temp registers free for speculative renaming; the
 *                   same pool may be reused across branches (their
 *                   speculative live ranges are disjoint by
 *                   construction).
 * @return true if the branch was converted.
 */
bool decomposeBranch(Function &fn, InstId branch,
                     const std::vector<RegId> &temp_pool,
                     const DecomposeOptions &opts, DecomposeStats &stats);

/**
 * Decompose every branch in `branches` (hottest-first order is the
 * caller's responsibility). Computes the free temp pool once.
 */
DecomposeStats decomposeBranches(Function &fn,
                                 const std::vector<InstId> &branches,
                                 const DecomposeOptions &opts = {});

/** Temp registers unused by fn, available for speculative renaming. */
std::vector<RegId> freeTempPool(const Function &fn);

} // namespace vanguard

#endif // VANGUARD_COMPILER_DECOMPOSE_HH
