#include "compiler/opt.hh"

#include <algorithm>
#include <optional>

#include "exec/memory.hh"
#include "exec/semantics.hh"
#include "ir/analysis.hh"
#include "support/logging.hh"

namespace vanguard {

namespace {

/** Ops whose only effect is their register result. */
bool
removable(const Instruction &inst, bool aggressive)
{
    if (!inst.writesDst() || inst.isTerminator() || inst.isStore())
        return false;
    if (opcodeCanFault(inst.op) && !aggressive)
        return false; // removing could hide a fault
    return true;
}

} // namespace

unsigned
deadCodeElimination(Function &fn, bool aggressive)
{
    unsigned removed_total = 0;
    for (;;) {
        Liveness live(fn);
        unsigned removed = 0;
        for (auto &bb : fn.blocks()) {
            RegSet live_after = live.liveOut(bb.id);
            // Walk backward, rebuilding the block without dead defs.
            std::vector<Instruction> kept;
            kept.reserve(bb.insts.size());
            for (size_t k = bb.insts.size(); k > 0; --k) {
                const Instruction &inst = bb.insts[k - 1];
                bool dead = removable(inst, aggressive) &&
                            !live_after.test(inst.dst);
                if (dead) {
                    ++removed;
                    continue;
                }
                live_after &= ~instDefs(inst);
                live_after |= instUses(inst);
                kept.push_back(inst);
            }
            std::reverse(kept.begin(), kept.end());
            bb.insts = std::move(kept);
        }
        removed_total += removed;
        if (removed == 0)
            break;
    }
    std::string err = fn.verify();
    vg_assert(err.empty(), "DCE broke the CFG: %s", err.c_str());
    return removed_total;
}

unsigned
constantFolding(Function &fn)
{
    unsigned folded = 0;
    // Tiny dummy memory: evaluate() only touches it for memory ops,
    // which we never fold.
    Memory dummy(8);

    for (auto &bb : fn.blocks()) {
        // Known-constant register values within this block.
        std::optional<int64_t> known[kNumRegs];

        for (auto &inst : bb.insts) {
            // Try folding pure ALU/compare/select ops whose inputs are
            // all known.
            bool pure = inst.writesDst() && !inst.isMemRef() &&
                        !inst.isTerminator() &&
                        inst.op != Opcode::MOVI &&
                        !opcodeCanFault(inst.op);
            if (pure) {
                bool inputs_known = true;
                int64_t regs[kNumRegs] = {};
                for (RegId src : {inst.src1, inst.src2, inst.src3}) {
                    if (src == kNoReg)
                        continue;
                    if (known[src].has_value())
                        regs[src] = *known[src];
                    else
                        inputs_known = false;
                }
                if (inputs_known) {
                    OpResult r = evaluate(inst, regs, dummy);
                    RegId dst = inst.dst;
                    inst = Instruction{};
                    inst.op = Opcode::MOVI;
                    inst.id = fn.nextInstId();
                    inst.dst = dst;
                    inst.imm = r.value;
                    ++folded;
                }
            }

            // Update the constant map.
            if (inst.op == Opcode::MOVI) {
                known[inst.dst] = inst.imm;
            } else if (inst.op == Opcode::MOV &&
                       known[inst.src1].has_value()) {
                known[inst.dst] = known[inst.src1];
            } else if (inst.writesDst()) {
                known[inst.dst].reset();
            }
        }
    }
    std::string err = fn.verify();
    vg_assert(err.empty(), "folding broke the CFG: %s", err.c_str());
    return folded;
}

OptStats
optimize(Function &fn, bool aggressive_dce)
{
    OptStats stats;
    for (;;) {
        unsigned folded = constantFolding(fn);
        unsigned removed = deadCodeElimination(fn, aggressive_dce);
        stats.instsFolded += folded;
        stats.instsRemoved += removed;
        if (folded == 0 && removed == 0)
            break;
    }
    return stats;
}

} // namespace vanguard
