/**
 * @file
 * CFG cleanup passes.
 *
 * - removeUnreachableBlocks: drops blocks unreachable from the entry
 *   and renumbers the survivors (BlockIds are dense indices). Needed
 *   after if-conversion, which strands the converted hammock sides.
 * - mergeStraightLineBlocks: folds `A: ...; jmp B` into A when B has
 *   no other predecessors, enlarging scheduling regions.
 * - simplifyCfg: both, to a fixed point.
 */

#ifndef VANGUARD_COMPILER_CLEANUP_HH
#define VANGUARD_COMPILER_CLEANUP_HH

#include "ir/function.hh"

namespace vanguard {

struct CleanupStats
{
    unsigned blocksRemoved = 0;
    unsigned blocksMerged = 0;
};

/** Remove unreachable blocks; renumbers BlockIds. */
unsigned removeUnreachableBlocks(Function &fn);

/** Merge single-pred jump-connected chains. Returns merges done. */
unsigned mergeStraightLineBlocks(Function &fn);

/** Run both passes to a fixed point. */
CleanupStats simplifyCfg(Function &fn);

} // namespace vanguard

#endif // VANGUARD_COMPILER_CLEANUP_HH
