#include "compiler/cleanup.hh"

#include <vector>

#include "ir/analysis.hh"
#include "support/logging.hh"

namespace vanguard {

unsigned
removeUnreachableBlocks(Function &fn)
{
    auto rpo = reversePostOrder(fn);
    if (rpo.size() == fn.numBlocks())
        return 0;

    std::vector<bool> reachable(fn.numBlocks(), false);
    for (BlockId b : rpo)
        reachable[b] = true;

    // Dense renumbering of the surviving blocks.
    std::vector<BlockId> remap(fn.numBlocks(), kNoBlock);
    BlockId next = 0;
    for (BlockId b = 0; b < fn.numBlocks(); ++b)
        if (reachable[b])
            remap[b] = next++;

    std::vector<BasicBlock> kept;
    kept.reserve(next);
    for (BlockId b = 0; b < fn.numBlocks(); ++b) {
        if (!reachable[b])
            continue;
        BasicBlock bb = std::move(fn.block(b));
        bb.id = remap[b];
        Instruction &term = bb.terminator();
        if (term.takenTarget != kNoBlock) {
            term.takenTarget = remap[term.takenTarget];
            vg_assert(term.takenTarget != kNoBlock,
                      "reachable block targets unreachable one");
        }
        if (term.fallTarget != kNoBlock) {
            term.fallTarget = remap[term.fallTarget];
            vg_assert(term.fallTarget != kNoBlock,
                      "reachable block falls to unreachable one");
        }
        kept.push_back(std::move(bb));
    }

    unsigned removed =
        static_cast<unsigned>(fn.numBlocks() - kept.size());
    fn.blocks() = std::move(kept);
    return removed;
}

unsigned
mergeStraightLineBlocks(Function &fn)
{
    unsigned merged = 0;
    bool changed = true;
    while (changed) {
        changed = false;
        auto preds = fn.predecessors();
        for (auto &bb : fn.blocks()) {
            if (!bb.hasTerminator() ||
                bb.terminator().op != Opcode::JMP) {
                continue;
            }
            BlockId succ_id = bb.terminator().takenTarget;
            if (succ_id == bb.id || preds[succ_id].size() != 1)
                continue;
            if (succ_id == 0)
                continue; // never merge the entry away
            BasicBlock &succ = fn.block(succ_id);
            // Fold: drop the jmp, append the successor's body +
            // terminator; the successor becomes unreachable.
            bb.insts.pop_back();
            bb.insts.insert(bb.insts.end(), succ.insts.begin(),
                            succ.insts.end());
            succ.insts.clear();
            // Leave a self-halt so the (unreachable) block stays
            // structurally valid until removeUnreachableBlocks runs.
            Instruction halt;
            halt.op = Opcode::HALT;
            halt.id = fn.nextInstId();
            succ.insts.push_back(halt);
            ++merged;
            changed = true;
            break; // predecessor lists are stale; recompute
        }
    }
    return merged;
}

CleanupStats
simplifyCfg(Function &fn)
{
    CleanupStats stats;
    for (;;) {
        unsigned merged = mergeStraightLineBlocks(fn);
        unsigned removed = removeUnreachableBlocks(fn);
        stats.blocksMerged += merged;
        stats.blocksRemoved += removed;
        if (merged == 0 && removed == 0)
            break;
    }
    std::string err = fn.verify();
    vg_assert(err.empty(), "cleanup broke the CFG: %s", err.c_str());
    return stats;
}

} // namespace vanguard
