/**
 * @file
 * Scalar optimization passes run before scheduling:
 *
 * - deadCodeElimination: removes instructions whose results are never
 *   used (global liveness-based, iterated to a fixed point). Loads
 *   can be removed (no fault can be observed earlier than the load
 *   itself would have faulted... they can fault — only LD_S and
 *   non-faulting ops are removed unless `aggressive`); stores,
 *   terminators, and anything with observable effects stay.
 * - constantFolding: forward-propagates constants within each block
 *   (MOVI/MOV chains, ALU on constants) and folds computable results
 *   into MOVIs, shortening dependence chains ahead of the scheduler.
 *
 * Both preserve architectural semantics exactly (property-tested).
 */

#ifndef VANGUARD_COMPILER_OPT_HH
#define VANGUARD_COMPILER_OPT_HH

#include "ir/function.hh"

namespace vanguard {

struct OptStats
{
    unsigned instsRemoved = 0;
    unsigned instsFolded = 0;
};

/**
 * Remove dead (unused-result) instructions.
 *
 * @param aggressive also remove dead faulting ops (LD/DIV) — changes
 *        fault behaviour but never architectural results of
 *        non-faulting runs.
 */
unsigned deadCodeElimination(Function &fn, bool aggressive = false);

/** Per-block constant propagation and folding. */
unsigned constantFolding(Function &fn);

/** Both passes to a fixed point. */
OptStats optimize(Function &fn, bool aggressive_dce = false);

} // namespace vanguard

#endif // VANGUARD_COMPILER_OPT_HH
