#include "compiler/hoist.hh"

namespace vanguard {

HoistPlan
computeHoistPlan(const BasicBlock &bb, unsigned max_hoist)
{
    HoistPlan plan;
    plan.bodySize = bb.bodySize();

    RegSet skipped_defs;
    RegSet skipped_uses;
    bool saw_store = false;

    for (size_t i = 0; i < plan.bodySize; ++i) {
        const Instruction &inst = bb.insts[i];
        if (plan.indices.size() >= max_hoist)
            break;

        auto skip = [&] {
            skipped_defs |= instDefs(inst);
            skipped_uses |= instUses(inst);
            if (inst.isStore())
                saw_store = true;
        };

        // Never speculate stores or (non-load) faulting ops, and keep
        // loads below any store they might alias.
        if (inst.isStore() || inst.op == Opcode::DIV ||
            inst.op == Opcode::NOP ||
            (inst.isLoad() && saw_store)) {
            skip();
            continue;
        }
        // PREDICT/RESOLVE/branches only appear as terminators; body
        // instructions here are data ops and loads.

        // Dependence checks against instructions being jumped over.
        RegSet uses = instUses(inst);
        RegSet defs = instDefs(inst);
        if ((uses & skipped_defs).any() ||     // RAW
            (defs & skipped_uses).any() ||     // WAR
            (defs & skipped_defs).any()) {     // WAW
            skip();
            continue;
        }

        plan.indices.push_back(i);
    }
    return plan;
}

double
hoistableFraction(const BasicBlock &bb)
{
    if (bb.bodySize() == 0)
        return 0.0;
    HoistPlan plan = computeHoistPlan(
        bb, static_cast<unsigned>(bb.bodySize()));
    return static_cast<double>(plan.indices.size()) /
           static_cast<double>(plan.bodySize);
}

} // namespace vanguard
