/**
 * @file
 * Hoist planning: which instructions of a successor block may legally
 * be executed early (speculatively, above a branch resolution point).
 *
 * An instruction is hoistable out of a block when:
 *   - it is not a terminator or a store (stores are never speculated;
 *     the paper sinks them below the resolution point),
 *   - it cannot fault, or is a load (loads become LD_S, the paper's
 *     non-faulting speculative load),
 *   - it is not a load that would move above an earlier (skipped)
 *     store in the same block (no data-speculation recovery is
 *     modeled, so we stay alias-conservative),
 *   - its register sources are not defined by skipped instructions
 *     (RAW), and its destination is neither read (WAR) nor written
 *     (WAW) by skipped instructions it would jump over.
 */

#ifndef VANGUARD_COMPILER_HOIST_HH
#define VANGUARD_COMPILER_HOIST_HH

#include <vector>

#include "ir/analysis.hh"
#include "ir/function.hh"

namespace vanguard {

struct HoistPlan
{
    /** Body indices of hoistable instructions, in original order. */
    std::vector<size_t> indices;

    /** Body size scanned (terminator excluded). */
    size_t bodySize = 0;

    bool empty() const { return indices.empty(); }
};

/**
 * Plan hoisting for the body of bb.
 *
 * @param bb        candidate successor block.
 * @param max_hoist cap on the number of hoisted instructions.
 */
HoistPlan computeHoistPlan(const BasicBlock &bb, unsigned max_hoist);

/**
 * Fraction of a block's body instructions that are hoistable — the
 * per-block ingredient of the paper's PHI metric (Table 2).
 */
double hoistableFraction(const BasicBlock &bb);

} // namespace vanguard

#endif // VANGUARD_COMPILER_HOIST_HH
