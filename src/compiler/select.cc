#include "compiler/select.hh"

#include <algorithm>

namespace vanguard {

std::vector<InstId>
selectBranches(const Function &fn, const BranchProfile &profile,
               const SelectionOptions &opts)
{
    std::vector<const BranchStats *> candidates;
    for (const auto &[id, bs] : profile.all()) {
        if (bs.execs < opts.minExecs)
            continue;
        if (opts.forwardOnly && !bs.forward)
            continue;
        if (bs.predictability() < opts.minPredictability)
            continue;
        if (bs.exposedPredictability() < opts.minExposed)
            continue;

        // The branch must still exist as a BR whose successors form a
        // decomposable shape (distinct, non-self successors).
        bool shape_ok = false;
        for (const auto &bb : fn.blocks()) {
            if (bb.hasTerminator() && bb.terminator().id == id &&
                bb.terminator().op == Opcode::BR) {
                const Instruction &br = bb.terminator();
                shape_ok = br.takenTarget != br.fallTarget &&
                           br.takenTarget != bb.id &&
                           br.fallTarget != bb.id;
                break;
            }
        }
        if (!shape_ok)
            continue;
        candidates.push_back(&bs);
    }

    std::sort(candidates.begin(), candidates.end(),
              [](const BranchStats *a, const BranchStats *b) {
                  if (a->execs != b->execs)
                      return a->execs > b->execs;
                  return a->branch < b->branch;
              });

    std::vector<InstId> out;
    out.reserve(candidates.size());
    for (const BranchStats *bs : candidates)
        out.push_back(bs->branch);
    return out;
}

double
convertedBranchFraction(const BranchProfile &profile,
                        const std::vector<InstId> &selected)
{
    size_t forward_static = 0;
    for (const auto &[id, bs] : profile.all())
        if (bs.forward)
            ++forward_static;
    if (forward_static == 0)
        return 0.0;
    return 100.0 * static_cast<double>(selected.size()) /
           static_cast<double>(forward_static);
}

} // namespace vanguard
