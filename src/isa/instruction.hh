/**
 * @file
 * The Instruction record shared by the IR, the functional interpreter,
 * and the timing simulator.
 */

#ifndef VANGUARD_ISA_INSTRUCTION_HH
#define VANGUARD_ISA_INSTRUCTION_HH

#include <cstdint>
#include <string>

#include "isa/opcode.hh"
#include "isa/reg.hh"

namespace vanguard {

using InstId = uint32_t;
using BlockId = uint32_t;

inline constexpr InstId kNoInst = 0xffffffff;
inline constexpr BlockId kNoBlock = 0xffffffff;

/**
 * A single IR instruction. Operand roles by opcode:
 *
 *   ALU/CMP     dst = src1 OP src2        (src2 == kNoReg => use imm)
 *   MOVI        dst = imm
 *   MOV         dst = src1
 *   SELECT      dst = src1 ? src2 : src3
 *   LD/LD_S     dst = mem[src1 + imm]
 *   ST          mem[src1 + imm] = src2
 *   BR          if (src1 != 0) goto takenTarget; else goto fallTarget
 *   JMP         goto takenTarget
 *   PREDICT     front-end predicted branch; taken => takenTarget block
 *   RESOLVE     if (src1 != 0) goto takenTarget (correction code);
 *               trains predictor of the associated PREDICT
 *   HALT        stop
 *
 * Branch decomposition metadata: PREDICT/RESOLVE carry origBranch, the
 * InstId of the source-program branch they were split from, which is
 * the profile/training key. RESOLVE additionally records which
 * predicted path it lies on (resolvePathTaken) so the original branch
 * outcome can be reconstructed: outcome = taken(resolve) ? !pathDir
 * : pathDir.
 */
struct Instruction
{
    InstId id = kNoInst;
    Opcode op = Opcode::NOP;

    RegId dst = kNoReg;
    RegId src1 = kNoReg;
    RegId src2 = kNoReg;
    RegId src3 = kNoReg;
    int64_t imm = 0;

    /** Control-flow targets (BlockIds until layout assigns addresses). */
    BlockId takenTarget = kNoBlock;
    BlockId fallTarget = kNoBlock;

    /** Decomposition metadata (PREDICT / RESOLVE only). */
    InstId origBranch = kNoInst;
    bool resolvePathTaken = false;

    bool isTerminator() const { return opcodeIsTerminator(op); }
    bool isBranch() const { return opcodeIsBranch(op); }
    bool isCondBranch() const { return opcodeIsCondBranch(op); }
    bool isLoad() const { return opcodeIsLoad(op); }
    bool isStore() const { return opcodeIsStore(op); }
    bool isMemRef() const { return opcodeIsMemRef(op); }
    bool writesDst() const { return opcodeWritesDst(op); }
    bool hasImmSrc2() const { return src2 == kNoReg; }

    unsigned latency() const { return opcodeLatency(op); }
    FuClass fuClass() const { return opcodeFuClass(op); }

    /** Render as assembly-ish text (for dumps and golden tests). */
    std::string toString() const;
};

} // namespace vanguard

#endif // VANGUARD_ISA_INSTRUCTION_HH
