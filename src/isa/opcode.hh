/**
 * @file
 * Opcode definitions for the Vanguard IR/ISA.
 *
 * The ISA is a RISC-like register machine extended with the paper's two
 * decomposed-branch operations:
 *
 *  - PREDICT: carries only a target; the front end consults the branch
 *    predictor when it is fetched and redirects fetch if predicted
 *    taken. Dropped after decode (consumes no back-end resources).
 *  - RESOLVE: looks like a conditional branch but is statically
 *    predicted not-taken; when its condition is true (the original
 *    branch was mispredicted) it redirects to correction code. Either
 *    way it trains the predictor entry of its associated PREDICT via
 *    the Decomposed Branch Buffer.
 *
 * It also has the DBT-style support the paper assumes (Sec. 2.2):
 * LD_S, a non-faulting speculative load, and a large temp-register file
 * (see reg.hh) for speculative renaming.
 */

#ifndef VANGUARD_ISA_OPCODE_HH
#define VANGUARD_ISA_OPCODE_HH

#include <cstdint>
#include <string_view>

namespace vanguard {

enum class Opcode : uint8_t
{
    // Integer ALU (1-cycle)
    ADD, SUB, AND, OR, XOR, SHL, SHR,
    MOVI,       ///< dst = imm
    MOV,        ///< dst = src1
    SELECT,     ///< dst = src1 ? src2 : imm-selected alt reg (see inst)

    // Comparisons producing 0/1 (1-cycle integer)
    CMPEQ, CMPNE, CMPLT, CMPLE, CMPGT, CMPGE,

    // Long-latency integer
    MUL,        ///< 3-cycle
    DIV,        ///< 12-cycle; faults on divide-by-zero

    // "Floating point" lane ops: integer semantics, FP latencies/ports.
    FADD, FSUB, FMUL, FDIV,

    // Memory (8-byte accesses, address = [src1 + imm])
    LD,         ///< faulting load
    LD_S,       ///< speculative non-faulting load: bad address yields 0
    ST,         ///< store src2 to [src1 + imm]

    // Control flow (block terminators)
    BR,         ///< if (src1 != 0) goto takenTarget else fall through
    JMP,        ///< unconditional
    PREDICT,    ///< decomposed-branch prediction point
    RESOLVE,    ///< decomposed-branch resolution point
    HALT,       ///< end of program

    NOP,

    NumOpcodes
};

/** Functional-unit class an opcode issues to (paper Table 1 FU mix). */
enum class FuClass : uint8_t
{
    IntAlu,     ///< 2 ports: INT/SIMD-permute
    Mem,        ///< 2 ports: LD/ST
    Fp,         ///< 4 ports: 64-bit SIMD/FP
    None,       ///< consumes no execution port (PREDICT, NOP, HALT)
};

/** Execution latency in cycles (loads: L1-hit latency; see caches). */
unsigned opcodeLatency(Opcode op);

FuClass opcodeFuClass(Opcode op);

std::string_view opcodeName(Opcode op);

bool opcodeIsTerminator(Opcode op);
bool opcodeIsBranch(Opcode op);     ///< BR, PREDICT, RESOLVE, JMP
bool opcodeIsCondBranch(Opcode op); ///< BR, RESOLVE
bool opcodeIsLoad(Opcode op);
bool opcodeIsStore(Opcode op);
bool opcodeIsMemRef(Opcode op);
bool opcodeWritesDst(Opcode op);
bool opcodeCanFault(Opcode op);     ///< LD, ST, DIV

} // namespace vanguard

#endif // VANGUARD_ISA_OPCODE_HH
