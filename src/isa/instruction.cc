#include "isa/instruction.hh"

#include <sstream>

namespace vanguard {

std::string
Instruction::toString() const
{
    std::ostringstream os;
    os << opcodeName(op);

    auto block = [](BlockId b) {
        return b == kNoBlock ? std::string("?") : "bb" + std::to_string(b);
    };

    switch (op) {
      case Opcode::MOVI:
        os << " " << regName(dst) << ", " << imm;
        break;
      case Opcode::MOV:
        os << " " << regName(dst) << ", " << regName(src1);
        break;
      case Opcode::SELECT:
        os << " " << regName(dst) << ", " << regName(src1) << " ? "
           << regName(src2) << " : " << regName(src3);
        break;
      case Opcode::LD:
      case Opcode::LD_S:
        os << " " << regName(dst) << ", [" << regName(src1) << " + "
           << imm << "]";
        break;
      case Opcode::ST:
        os << " [" << regName(src1) << " + " << imm << "], "
           << regName(src2);
        break;
      case Opcode::BR:
        os << " " << regName(src1) << ", " << block(takenTarget)
           << " / " << block(fallTarget);
        break;
      case Opcode::JMP:
        os << " " << block(takenTarget);
        break;
      case Opcode::PREDICT:
        os << " " << block(takenTarget) << " / " << block(fallTarget)
           << " (orig #" << origBranch << ")";
        break;
      case Opcode::RESOLVE:
        os << " " << regName(src1) << ", " << block(takenTarget)
           << " / " << block(fallTarget) << " (orig #" << origBranch
           << ", path " << (resolvePathTaken ? "T" : "N") << ")";
        break;
      case Opcode::HALT:
      case Opcode::NOP:
        break;
      default:
        os << " " << regName(dst) << ", " << regName(src1) << ", ";
        if (hasImmSrc2())
            os << imm;
        else
            os << regName(src2);
        break;
    }
    return os.str();
}

} // namespace vanguard
