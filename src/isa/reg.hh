/**
 * @file
 * Register file specification.
 *
 * The machine exposes 32 architectural registers (r0..r31) plus 32
 * temp/shadow registers (t0..t31). The temp bank models the paper's
 * DBT assumption of "additional registers to hold speculative values"
 * (Sec. 2.2 item 3): the Decomposed Branch Transformation renames
 * hoisted speculative defs into the temp bank so the alternate path's
 * live-in values survive a misprediction.
 */

#ifndef VANGUARD_ISA_REG_HH
#define VANGUARD_ISA_REG_HH

#include <cstdint>
#include <string>

namespace vanguard {

using RegId = uint8_t;

inline constexpr unsigned kNumArchRegs = 32;
inline constexpr unsigned kNumTempRegs = 32;
inline constexpr unsigned kNumRegs = kNumArchRegs + kNumTempRegs;

/** Sentinel for "no register operand". */
inline constexpr RegId kNoReg = 0xff;

inline constexpr bool
isArchReg(RegId r)
{
    return r < kNumArchRegs;
}

inline constexpr bool
isTempReg(RegId r)
{
    return r >= kNumArchRegs && r < kNumRegs;
}

inline constexpr RegId
tempReg(unsigned index)
{
    return static_cast<RegId>(kNumArchRegs + index);
}

inline std::string
regName(RegId r)
{
    if (r == kNoReg)
        return "-";
    if (isArchReg(r))
        return "r" + std::to_string(r);
    return "t" + std::to_string(r - kNumArchRegs);
}

} // namespace vanguard

#endif // VANGUARD_ISA_REG_HH
