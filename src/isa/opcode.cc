#include "isa/opcode.hh"

#include "support/logging.hh"

namespace vanguard {

unsigned
opcodeLatency(Opcode op)
{
    switch (op) {
      case Opcode::MUL:
        return 3;
      case Opcode::DIV:
        return 12;
      case Opcode::FADD:
      case Opcode::FSUB:
        return 3;
      case Opcode::FMUL:
        return 4;
      case Opcode::FDIV:
        return 12;
      case Opcode::LD:
      case Opcode::LD_S:
        return 4; // L1 hit latency; the cache model adds miss cycles
      default:
        return 1;
    }
}

FuClass
opcodeFuClass(Opcode op)
{
    switch (op) {
      case Opcode::LD:
      case Opcode::LD_S:
      case Opcode::ST:
        return FuClass::Mem;
      case Opcode::FADD:
      case Opcode::FSUB:
      case Opcode::FMUL:
      case Opcode::FDIV:
        return FuClass::Fp;
      case Opcode::PREDICT:
      case Opcode::NOP:
      case Opcode::HALT:
        return FuClass::None;
      default:
        return FuClass::IntAlu;
    }
}

std::string_view
opcodeName(Opcode op)
{
    switch (op) {
      case Opcode::ADD: return "add";
      case Opcode::SUB: return "sub";
      case Opcode::AND: return "and";
      case Opcode::OR: return "or";
      case Opcode::XOR: return "xor";
      case Opcode::SHL: return "shl";
      case Opcode::SHR: return "shr";
      case Opcode::MOVI: return "movi";
      case Opcode::MOV: return "mov";
      case Opcode::SELECT: return "select";
      case Opcode::CMPEQ: return "cmpeq";
      case Opcode::CMPNE: return "cmpne";
      case Opcode::CMPLT: return "cmplt";
      case Opcode::CMPLE: return "cmple";
      case Opcode::CMPGT: return "cmpgt";
      case Opcode::CMPGE: return "cmpge";
      case Opcode::MUL: return "mul";
      case Opcode::DIV: return "div";
      case Opcode::FADD: return "fadd";
      case Opcode::FSUB: return "fsub";
      case Opcode::FMUL: return "fmul";
      case Opcode::FDIV: return "fdiv";
      case Opcode::LD: return "ld";
      case Opcode::LD_S: return "ld.s";
      case Opcode::ST: return "st";
      case Opcode::BR: return "br";
      case Opcode::JMP: return "jmp";
      case Opcode::PREDICT: return "predict";
      case Opcode::RESOLVE: return "resolve";
      case Opcode::HALT: return "halt";
      case Opcode::NOP: return "nop";
      default:
        vg_throw(Invariant, "bad opcode %d", static_cast<int>(op));
    }
}

bool
opcodeIsTerminator(Opcode op)
{
    switch (op) {
      case Opcode::BR:
      case Opcode::JMP:
      case Opcode::PREDICT:
      case Opcode::RESOLVE:
      case Opcode::HALT:
        return true;
      default:
        return false;
    }
}

bool
opcodeIsBranch(Opcode op)
{
    switch (op) {
      case Opcode::BR:
      case Opcode::JMP:
      case Opcode::PREDICT:
      case Opcode::RESOLVE:
        return true;
      default:
        return false;
    }
}

bool
opcodeIsCondBranch(Opcode op)
{
    return op == Opcode::BR || op == Opcode::RESOLVE;
}

bool
opcodeIsLoad(Opcode op)
{
    return op == Opcode::LD || op == Opcode::LD_S;
}

bool
opcodeIsStore(Opcode op)
{
    return op == Opcode::ST;
}

bool
opcodeIsMemRef(Opcode op)
{
    return opcodeIsLoad(op) || opcodeIsStore(op);
}

bool
opcodeWritesDst(Opcode op)
{
    switch (op) {
      case Opcode::ST:
      case Opcode::BR:
      case Opcode::JMP:
      case Opcode::PREDICT:
      case Opcode::RESOLVE:
      case Opcode::HALT:
      case Opcode::NOP:
        return false;
      default:
        return true;
    }
}

bool
opcodeCanFault(Opcode op)
{
    return op == Opcode::LD || op == Opcode::ST || op == Opcode::DIV;
}

} // namespace vanguard
