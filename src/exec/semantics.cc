#include "exec/semantics.hh"

#include "support/logging.hh"

namespace vanguard {

namespace {

int64_t
readSrc2(const Instruction &inst, const int64_t *regs)
{
    return inst.hasImmSrc2() ? inst.imm : regs[inst.src2];
}

} // namespace

OpResult
evaluate(const Instruction &inst, const int64_t *regs, const Memory &mem)
{
    OpResult r;
    auto s1 = [&] { return regs[inst.src1]; };

    switch (inst.op) {
      case Opcode::ADD:
        r.value = s1() + readSrc2(inst, regs);
        break;
      case Opcode::SUB:
        r.value = s1() - readSrc2(inst, regs);
        break;
      case Opcode::AND:
        r.value = s1() & readSrc2(inst, regs);
        break;
      case Opcode::OR:
        r.value = s1() | readSrc2(inst, regs);
        break;
      case Opcode::XOR:
        r.value = s1() ^ readSrc2(inst, regs);
        break;
      case Opcode::SHL:
        r.value = static_cast<int64_t>(
            static_cast<uint64_t>(s1())
            << (static_cast<uint64_t>(readSrc2(inst, regs)) & 63));
        break;
      case Opcode::SHR:
        r.value = static_cast<int64_t>(
            static_cast<uint64_t>(s1()) >>
            (static_cast<uint64_t>(readSrc2(inst, regs)) & 63));
        break;
      case Opcode::MOVI:
        r.value = inst.imm;
        break;
      case Opcode::MOV:
        r.value = s1();
        break;
      case Opcode::SELECT:
        r.value = s1() != 0 ? regs[inst.src2] : regs[inst.src3];
        break;
      case Opcode::CMPEQ:
        r.value = s1() == readSrc2(inst, regs) ? 1 : 0;
        break;
      case Opcode::CMPNE:
        r.value = s1() != readSrc2(inst, regs) ? 1 : 0;
        break;
      case Opcode::CMPLT:
        r.value = s1() < readSrc2(inst, regs) ? 1 : 0;
        break;
      case Opcode::CMPLE:
        r.value = s1() <= readSrc2(inst, regs) ? 1 : 0;
        break;
      case Opcode::CMPGT:
        r.value = s1() > readSrc2(inst, regs) ? 1 : 0;
        break;
      case Opcode::CMPGE:
        r.value = s1() >= readSrc2(inst, regs) ? 1 : 0;
        break;
      case Opcode::MUL:
      case Opcode::FMUL:
        r.value = s1() * readSrc2(inst, regs);
        break;
      case Opcode::DIV:
      case Opcode::FDIV: {
        int64_t denom = readSrc2(inst, regs);
        if (denom == 0) {
            if (inst.op == Opcode::DIV) {
                r.fault = true;
            } else {
                r.value = 0; // FP lane: define x/0 == 0 (no faulting FP)
            }
        } else if (s1() == INT64_MIN && denom == -1) {
            r.value = INT64_MIN; // wrap, matching hardware idiv semantics
        } else {
            r.value = s1() / denom;
        }
        break;
      }
      case Opcode::FADD:
        r.value = s1() + readSrc2(inst, regs);
        break;
      case Opcode::FSUB:
        r.value = s1() - readSrc2(inst, regs);
        break;
      case Opcode::LD:
      case Opcode::LD_S: {
        uint64_t addr = static_cast<uint64_t>(s1() + inst.imm);
        r.memAddr = addr;
        if (!mem.inBounds(addr)) {
            if (inst.op == Opcode::LD)
                r.fault = true;
            else
                r.value = 0; // non-faulting speculative load
        } else {
            r.value = mem.read64(addr);
        }
        break;
      }
      case Opcode::ST: {
        uint64_t addr = static_cast<uint64_t>(s1() + inst.imm);
        r.memAddr = addr;
        r.isStore = true;
        r.storeValue = regs[inst.src2];
        if (!mem.inBounds(addr))
            r.fault = true;
        break;
      }
      case Opcode::BR:
      case Opcode::RESOLVE:
        r.taken = s1() != 0;
        break;
      case Opcode::JMP:
        r.taken = true;
        break;
      case Opcode::PREDICT:
      case Opcode::HALT:
      case Opcode::NOP:
        break;
      default:
        vg_throw(Invariant, "evaluate: bad opcode");
    }
    return r;
}

} // namespace vanguard
