#include "exec/decoded_program.hh"

#include "support/logging.hh"

namespace vanguard {

DecodedProgram
DecodedProgram::decode(const Program &prog, unsigned line_bytes)
{
    vg_assert(line_bytes != 0 && (line_bytes & (line_bytes - 1)) == 0,
              "decode: line size %u is not a power of two", line_bytes);

    DecodedProgram out;
    out.line_bytes_ = line_bytes;
    out.insts_.resize(prog.size());
    const uint64_t line_mask = ~uint64_t{line_bytes - 1};

    for (size_t i = 0; i < prog.size(); ++i) {
        const LaidInst &li = prog.at(i);
        const Instruction &inst = li.inst;
        DecodedInst &d = out.insts_[i];

        d.pc = li.pc;
        d.lineTag = li.pc & line_mask;
        d.imm = inst.imm;
        d.id = inst.id;
        d.op = inst.op;
        d.dst = inst.dst;
        d.src1 = inst.src1;
        d.src2 = inst.src2;
        d.src3 = inst.src3;
        d.fu = static_cast<uint8_t>(inst.fuClass());
        d.latency = static_cast<uint8_t>(inst.latency());

        if (inst.writesDst())
            d.flags |= DecodedInst::kFlagWritesDst;
        if (inst.isLoad())
            d.flags |= DecodedInst::kFlagIsLoad;
        if (inst.isStore())
            d.flags |= DecodedInst::kFlagIsStore;
        if (inst.hasImmSrc2())
            d.flags |= DecodedInst::kFlagImmSrc2;
        if (inst.resolvePathTaken)
            d.flags |= DecodedInst::kFlagResolvePathTaken;

        if (inst.isBranch()) {
            d.takenPc = li.takenPc;
            size_t taken_idx = prog.indexOf(li.takenPc);
            vg_assert(taken_idx < prog.size(),
                      "decode: taken target 0x%llx outside program",
                      static_cast<unsigned long long>(li.takenPc));
            d.takenIdx = static_cast<uint32_t>(taken_idx);
        }

        if (inst.op == Opcode::BR)
            d.stallKey = inst.id;
        else if (inst.op == Opcode::RESOLVE)
            d.stallKey = inst.origBranch;

        if (d.stallKey != kNoInst &&
            (out.max_stall_key_ == kNoInst ||
             d.stallKey > out.max_stall_key_)) {
            out.max_stall_key_ = d.stallKey;
        }
    }
    return out;
}

} // namespace vanguard
