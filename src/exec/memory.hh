/**
 * @file
 * Flat byte-addressable data memory shared by the functional
 * interpreter and the timing simulator. Data addresses are a separate
 * space from instruction addresses (which the layout pass assigns);
 * the I-cache indexes code addresses, the D-cache data addresses.
 */

#ifndef VANGUARD_EXEC_MEMORY_HH
#define VANGUARD_EXEC_MEMORY_HH

#include <cstdint>
#include <cstring>
#include <vector>

namespace vanguard {

class Memory
{
  public:
    explicit Memory(size_t size_bytes) : bytes_(size_bytes, 0) {}

    size_t size() const { return bytes_.size(); }

    bool
    inBounds(uint64_t addr, size_t access_size = 8) const
    {
        return addr <= bytes_.size() && addr + access_size <= bytes_.size();
    }

    /** 8-byte load; caller must have bounds-checked. */
    int64_t
    read64(uint64_t addr) const
    {
        int64_t v;
        std::memcpy(&v, bytes_.data() + addr, sizeof(v));
        return v;
    }

    /** 8-byte store; caller must have bounds-checked. */
    void
    write64(uint64_t addr, int64_t value)
    {
        std::memcpy(bytes_.data() + addr, &value, sizeof(value));
    }

    void clear() { std::fill(bytes_.begin(), bytes_.end(), 0); }

    const std::vector<uint8_t> &raw() const { return bytes_; }

    bool
    operator==(const Memory &other) const
    {
        return bytes_ == other.bytes_;
    }

  private:
    std::vector<uint8_t> bytes_;
};

} // namespace vanguard

#endif // VANGUARD_EXEC_MEMORY_HH
