/**
 * @file
 * Functional interpreter — the golden model.
 *
 * Executes a Function over a Memory with architectural (untimed)
 * semantics. Three uses:
 *   1. correctness oracle: transformed code must produce the same final
 *      registers/memory/store stream as the original, for *any* answer
 *      the PREDICT oracle gives;
 *   2. profiling substrate: the profiler hooks branch execution to
 *      measure bias and (with a software predictor model) predictability;
 *   3. workload validation in tests.
 *
 * The step loop is a CRTP template (InterpreterBase) so per-event taps
 * are an execution *policy* resolved at compile time, not a per-step
 * std::function call. Interpreter keeps the classic runtime-hook API
 * for profilers and tests; FastInterpreter is the null-hook
 * specialization — its onPredict/onBranch/onInst bodies are the empty
 * base defaults, so the compiler deletes the tap sites outright, which
 * is what the per-run lockstep golden pass wants.
 */

#ifndef VANGUARD_EXEC_INTERPRETER_HH
#define VANGUARD_EXEC_INTERPRETER_HH

#include <functional>
#include <vector>

#include "exec/memory.hh"
#include "exec/semantics.hh"
#include "ir/function.hh"
#include "support/fault_inject.hh"
#include "support/logging.hh"

namespace vanguard {

/** Termination status of a functional run. */
enum class RunStatus
{
    Halted,     ///< reached HALT
    Fault,      ///< memory fault or integer divide-by-zero
    InstLimit,  ///< exceeded the dynamic instruction budget
};

struct RunResult
{
    RunStatus status = RunStatus::Halted;
    uint64_t dynamicInsts = 0;
    uint64_t dynamicBranches = 0;   ///< dynamic BR executions
    InstId faultingInst = kNoInst;
};

/**
 * Shared functional step loop; Derived supplies the per-event policy
 * through three statically-dispatched members (all with do-nothing /
 * predict-not-taken defaults below):
 *
 *   bool onPredict(const Instruction &)          — PREDICT direction
 *   void onBranch(const Instruction &, bool)     — each executed BR
 *   void onInst(const Instruction &, BlockId)    — every instruction
 */
template <typename Derived>
class InterpreterBase
{
  public:
    InterpreterBase(const Function &fn, Memory &mem)
        : fn_(fn), mem_(mem)
    {
    }

    /** Record every committed store (addr, value) for stream compare. */
    void recordStores(bool enable) { record_stores_ = enable; }

    const std::vector<std::pair<uint64_t, int64_t>> &
    storeLog() const
    {
        return store_log_;
    }

    int64_t
    reg(RegId r) const
    {
        vg_assert(r < kNumRegs);
        return regs_[r];
    }

    void
    setReg(RegId r, int64_t value)
    {
        vg_assert(r < kNumRegs);
        regs_[r] = value;
    }

    const int64_t *regs() const { return regs_; }

    /** Reset control state (registers preserved) to the entry block. */
    void restart() { store_log_.clear(); }

    /**
     * Forward-progress watchdog: when nonzero, exhausting this many
     * steps without reaching HALT throws SimError(Hang) instead of
     * returning RunStatus::InstLimit — a livelocked functional run
     * (e.g. an IR loop that never exits) surfaces as a structured,
     * catchable failure rather than a silently-truncated result.
     */
    void setStepBudget(uint64_t steps) { step_budget_ = steps; }

    /** Run until HALT, fault, or the dynamic instruction limit. */
    RunResult
    run(uint64_t max_insts = 100'000'000)
    {
        RunResult result;
        BlockId bb = 0;
        size_t idx = 0;

        uint64_t limit = max_insts;
        if (step_budget_ != 0 && step_budget_ < limit)
            limit = step_budget_;

        while (result.dynamicInsts < limit) {
            const BasicBlock &blk = fn_.block(bb);
            vg_assert(idx < blk.insts.size(),
                      "ran off end of block %u", bb);
            const Instruction &inst = blk.insts[idx];

            ++result.dynamicInsts;
            derived().onInst(inst, bb);

            // Deterministic fault-injection site, gated to one draw per
            // 4096 insts so an armed injector barely perturbs profiling.
            if (faultinject::armed() &&
                (result.dynamicInsts & 4095) == 0) {
                faultinject::site("interp.step", SimError::Kind::Hang);
            }

            // Control flow is handled directly; data ops via
            // evaluate().
            switch (inst.op) {
              case Opcode::HALT:
                result.status = RunStatus::Halted;
                return result;
              case Opcode::JMP:
                bb = inst.takenTarget;
                idx = 0;
                continue;
              case Opcode::PREDICT: {
                bool predicted_taken = derived().onPredict(inst);
                bb = predicted_taken ? inst.takenTarget
                                     : inst.fallTarget;
                idx = 0;
                continue;
              }
              case Opcode::BR:
              case Opcode::RESOLVE: {
                OpResult r = evaluate(inst, regs_, mem_);
                if (inst.op == Opcode::BR) {
                    ++result.dynamicBranches;
                    derived().onBranch(inst, r.taken);
                }
                bb = r.taken ? inst.takenTarget : inst.fallTarget;
                idx = 0;
                continue;
              }
              default:
                break;
            }

            OpResult r = evaluate(inst, regs_, mem_);
            if (r.fault) {
                result.status = RunStatus::Fault;
                result.faultingInst = inst.id;
                return result;
            }
            if (r.isStore) {
                mem_.write64(r.memAddr, r.storeValue);
                if (record_stores_)
                    store_log_.emplace_back(r.memAddr, r.storeValue);
            } else if (inst.writesDst()) {
                regs_[inst.dst] = r.value;
            }
            ++idx;
        }

        if (step_budget_ != 0 && result.dynamicInsts >= step_budget_) {
            vg_throw(Hang,
                     "functional step budget exhausted after %llu insts "
                     "without reaching HALT (block %u)",
                     static_cast<unsigned long long>(
                         result.dynamicInsts),
                     bb);
        }
        result.status = RunStatus::InstLimit;
        return result;
    }

  protected:
    // Default policy: predict not-taken, no taps. A Derived that keeps
    // these inherits a loop with no per-event indirection at all.
    bool onPredict(const Instruction &) { return false; }
    void onBranch(const Instruction &, bool) {}
    void onInst(const Instruction &, BlockId) {}

    Derived &derived() { return *static_cast<Derived *>(this); }

    const Function &fn_;
    Memory &mem_;
    int64_t regs_[kNumRegs] = {};

    bool record_stores_ = false;
    uint64_t step_budget_ = 0;
    std::vector<std::pair<uint64_t, int64_t>> store_log_;
};

/**
 * Hook-free interpreter: the statically-null execution policy. Used
 * where the caller only wants architectural results (lockstep golden
 * runs, oracle pre-passes) and the per-step tap sites should cost
 * nothing.
 */
class FastInterpreter final : public InterpreterBase<FastInterpreter>
{
  public:
    using InterpreterBase::InterpreterBase;
};

/**
 * The classic runtime-configurable interpreter: per-event taps are
 * std::functions installed after construction. Profilers, correctness
 * sweeps, and tests that need to observe execution use this one.
 */
class Interpreter : public InterpreterBase<Interpreter>
{
    friend class InterpreterBase<Interpreter>;

  public:
    /** Oracle deciding PREDICT directions; the default predicts
     *  not-taken. Correctness tests sweep oracles. */
    using PredictOracle = std::function<bool(const Instruction &)>;

    /** Hook invoked for every executed BR with its outcome. */
    using BranchHook = std::function<void(const Instruction &, bool)>;

    /** Hook invoked for every executed instruction. */
    using InstHook = std::function<void(const Instruction &, BlockId)>;

    Interpreter(const Function &fn, Memory &mem);

    void setPredictOracle(PredictOracle oracle);
    void setBranchHook(BranchHook hook) { branch_hook_ = std::move(hook); }
    void setInstHook(InstHook hook) { inst_hook_ = std::move(hook); }

  private:
    bool
    onPredict(const Instruction &inst)
    {
        return predict_oracle_(inst);
    }

    void
    onBranch(const Instruction &inst, bool taken)
    {
        if (branch_hook_)
            branch_hook_(inst, taken);
    }

    void
    onInst(const Instruction &inst, BlockId bb)
    {
        if (inst_hook_)
            inst_hook_(inst, bb);
    }

    PredictOracle predict_oracle_;
    BranchHook branch_hook_;
    InstHook inst_hook_;
};

} // namespace vanguard

#endif // VANGUARD_EXEC_INTERPRETER_HH
