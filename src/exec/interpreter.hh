/**
 * @file
 * Functional interpreter — the golden model.
 *
 * Executes a Function over a Memory with architectural (untimed)
 * semantics. Three uses:
 *   1. correctness oracle: transformed code must produce the same final
 *      registers/memory/store stream as the original, for *any* answer
 *      the PREDICT oracle gives;
 *   2. profiling substrate: the profiler hooks branch execution to
 *      measure bias and (with a software predictor model) predictability;
 *   3. workload validation in tests.
 */

#ifndef VANGUARD_EXEC_INTERPRETER_HH
#define VANGUARD_EXEC_INTERPRETER_HH

#include <functional>
#include <vector>

#include "exec/memory.hh"
#include "exec/semantics.hh"
#include "ir/function.hh"

namespace vanguard {

/** Termination status of a functional run. */
enum class RunStatus
{
    Halted,     ///< reached HALT
    Fault,      ///< memory fault or integer divide-by-zero
    InstLimit,  ///< exceeded the dynamic instruction budget
};

struct RunResult
{
    RunStatus status = RunStatus::Halted;
    uint64_t dynamicInsts = 0;
    uint64_t dynamicBranches = 0;   ///< dynamic BR executions
    InstId faultingInst = kNoInst;
};

class Interpreter
{
  public:
    /** Oracle deciding PREDICT directions; the default predicts
     *  not-taken. Correctness tests sweep oracles. */
    using PredictOracle = std::function<bool(const Instruction &)>;

    /** Hook invoked for every executed BR with its outcome. */
    using BranchHook = std::function<void(const Instruction &, bool)>;

    /** Hook invoked for every executed instruction. */
    using InstHook = std::function<void(const Instruction &, BlockId)>;

    Interpreter(const Function &fn, Memory &mem);

    void setPredictOracle(PredictOracle oracle);
    void setBranchHook(BranchHook hook) { branch_hook_ = std::move(hook); }
    void setInstHook(InstHook hook) { inst_hook_ = std::move(hook); }

    /** Record every committed store (addr, value) for stream compare. */
    void recordStores(bool enable) { record_stores_ = enable; }

    const std::vector<std::pair<uint64_t, int64_t>> &
    storeLog() const
    {
        return store_log_;
    }

    int64_t reg(RegId r) const;
    void setReg(RegId r, int64_t value);
    const int64_t *regs() const { return regs_; }

    /** Reset control state (registers preserved) to the entry block. */
    void restart();

    /**
     * Forward-progress watchdog: when nonzero, exhausting this many
     * steps without reaching HALT throws SimError(Hang) instead of
     * returning RunStatus::InstLimit — a livelocked functional run
     * (e.g. an IR loop that never exits) surfaces as a structured,
     * catchable failure rather than a silently-truncated result.
     */
    void setStepBudget(uint64_t steps) { step_budget_ = steps; }

    /** Run until HALT, fault, or the dynamic instruction limit. */
    RunResult run(uint64_t max_insts = 100'000'000);

  private:
    const Function &fn_;
    Memory &mem_;
    int64_t regs_[kNumRegs] = {};

    PredictOracle predict_oracle_;
    BranchHook branch_hook_;
    InstHook inst_hook_;

    bool record_stores_ = false;
    uint64_t step_budget_ = 0;
    std::vector<std::pair<uint64_t, int64_t>> store_log_;
};

} // namespace vanguard

#endif // VANGUARD_EXEC_INTERPRETER_HH
