/**
 * @file
 * The single definition of instruction semantics. Both the functional
 * interpreter (golden model) and the timing simulator's execute stage
 * call evaluate(), so functional and timed execution can never diverge.
 */

#ifndef VANGUARD_EXEC_SEMANTICS_HH
#define VANGUARD_EXEC_SEMANTICS_HH

#include <cstdint>

#include "exec/memory.hh"
#include "isa/instruction.hh"

namespace vanguard {

/** Outcome of evaluating one instruction (no state is mutated). */
struct OpResult
{
    int64_t value = 0;      ///< dst value when the op writes a register
    bool taken = false;     ///< BR/RESOLVE: condition was true
    bool fault = false;     ///< LD/ST out of bounds or DIV by zero
    bool isStore = false;
    uint64_t memAddr = 0;   ///< effective address for memory ops
    int64_t storeValue = 0;
};

/**
 * Evaluate an instruction against a register file and memory. Loads
 * read memory; stores compute (addr, value) but do NOT write — the
 * caller applies the store so speculative paths can be squashed.
 *
 * @param inst instruction to evaluate (PREDICT/JMP/HALT/NOP evaluate
 *             to a no-op result).
 * @param regs register file of kNumRegs entries.
 * @param mem  data memory.
 */
OpResult evaluate(const Instruction &inst, const int64_t *regs,
                  const Memory &mem);

} // namespace vanguard

#endif // VANGUARD_EXEC_SEMANTICS_HH
