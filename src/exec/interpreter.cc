#include "exec/interpreter.hh"

#include "support/fault_inject.hh"
#include "support/logging.hh"

namespace vanguard {

Interpreter::Interpreter(const Function &fn, Memory &mem)
    : fn_(fn), mem_(mem)
{
    predict_oracle_ = [](const Instruction &) { return false; };
}

void
Interpreter::setPredictOracle(PredictOracle oracle)
{
    vg_assert(oracle != nullptr);
    predict_oracle_ = std::move(oracle);
}

int64_t
Interpreter::reg(RegId r) const
{
    vg_assert(r < kNumRegs);
    return regs_[r];
}

void
Interpreter::setReg(RegId r, int64_t value)
{
    vg_assert(r < kNumRegs);
    regs_[r] = value;
}

void
Interpreter::restart()
{
    store_log_.clear();
}

RunResult
Interpreter::run(uint64_t max_insts)
{
    RunResult result;
    BlockId bb = 0;
    size_t idx = 0;

    uint64_t limit = max_insts;
    if (step_budget_ != 0 && step_budget_ < limit)
        limit = step_budget_;

    while (result.dynamicInsts < limit) {
        const BasicBlock &blk = fn_.block(bb);
        vg_assert(idx < blk.insts.size(), "ran off end of block %u", bb);
        const Instruction &inst = blk.insts[idx];

        ++result.dynamicInsts;
        if (inst_hook_)
            inst_hook_(inst, bb);

        // Deterministic fault-injection site, gated to one draw per
        // 4096 insts so an armed injector barely perturbs profiling.
        if (faultinject::armed() &&
            (result.dynamicInsts & 4095) == 0) {
            faultinject::site("interp.step", SimError::Kind::Hang);
        }

        // Control flow is handled directly; data ops via evaluate().
        switch (inst.op) {
          case Opcode::HALT:
            result.status = RunStatus::Halted;
            return result;
          case Opcode::JMP:
            bb = inst.takenTarget;
            idx = 0;
            continue;
          case Opcode::PREDICT: {
            bool predicted_taken = predict_oracle_(inst);
            bb = predicted_taken ? inst.takenTarget : inst.fallTarget;
            idx = 0;
            continue;
          }
          case Opcode::BR:
          case Opcode::RESOLVE: {
            OpResult r = evaluate(inst, regs_, mem_);
            if (inst.op == Opcode::BR) {
                ++result.dynamicBranches;
                if (branch_hook_)
                    branch_hook_(inst, r.taken);
            }
            bb = r.taken ? inst.takenTarget : inst.fallTarget;
            idx = 0;
            continue;
          }
          default:
            break;
        }

        OpResult r = evaluate(inst, regs_, mem_);
        if (r.fault) {
            result.status = RunStatus::Fault;
            result.faultingInst = inst.id;
            return result;
        }
        if (r.isStore) {
            mem_.write64(r.memAddr, r.storeValue);
            if (record_stores_)
                store_log_.emplace_back(r.memAddr, r.storeValue);
        } else if (inst.writesDst()) {
            regs_[inst.dst] = r.value;
        }
        ++idx;
    }

    if (step_budget_ != 0 && result.dynamicInsts >= step_budget_) {
        vg_throw(Hang,
                 "functional step budget exhausted after %llu insts "
                 "without reaching HALT (block %u)",
                 static_cast<unsigned long long>(result.dynamicInsts),
                 bb);
    }
    result.status = RunStatus::InstLimit;
    return result;
}

} // namespace vanguard
