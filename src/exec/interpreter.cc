#include "exec/interpreter.hh"

namespace vanguard {

Interpreter::Interpreter(const Function &fn, Memory &mem)
    : InterpreterBase(fn, mem)
{
    predict_oracle_ = [](const Instruction &) { return false; };
}

void
Interpreter::setPredictOracle(PredictOracle oracle)
{
    vg_assert(oracle != nullptr);
    predict_oracle_ = std::move(oracle);
}

} // namespace vanguard
