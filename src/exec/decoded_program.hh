/**
 * @file
 * Pre-decoded program representation for the fast simulation path.
 *
 * A DecodedProgram is an immutable flat array of DecodedInst records
 * computed once per compiled Program (once per compile artifact in a
 * sweep) and shared read-only across every seed and machine width that
 * simulates that artifact. Each record carries everything the cycle
 * loop needs in one cache-line-friendly POD:
 *
 *  - operand registers, the immediate, and semantic flags (writes-dst,
 *    load/store, imm-as-src2, RESOLVE path direction), so the loop
 *    never reads an Instruction or calls the opcode helper functions;
 *  - control-flow both ways: the taken target as a pre-resolved
 *    *instruction index* (no indexOf division on redirect) and as a
 *    PC (for the BTB, which is address-indexed hardware);
 *  - timing inputs resolved at decode time: FU class, execute
 *    latency, the I-cache line tag of the PC, and the stall-accounting
 *    key (BR -> own id, RESOLVE -> origBranch, else kNoInst).
 *
 * The decode is a pure function of (Program, I-line size); it performs
 * no selection or scheduling and must not change simulated behavior —
 * tests/test_fastpath.cc holds the fast path bit-identical to the
 * retained reference path that interprets Instruction records.
 */

#ifndef VANGUARD_EXEC_DECODED_PROGRAM_HH
#define VANGUARD_EXEC_DECODED_PROGRAM_HH

#include <cstddef>
#include <cstdint>
#include <vector>

#include "compiler/layout.hh"
#include "isa/instruction.hh"

namespace vanguard {

/** One pre-decoded instruction; plain data, no methods with logic. */
struct DecodedInst
{
    uint64_t pc = 0;
    uint64_t takenPc = 0;     ///< taken-path address (branches only)
    uint64_t lineTag = 0;     ///< pc & ~(lineBytes-1) at decode time
    int64_t imm = 0;

    uint32_t takenIdx = 0;    ///< instruction index of takenPc
    InstId id = kNoInst;
    InstId stallKey = kNoInst; ///< per-branch stall-accumulator index

    Opcode op = Opcode::NOP;
    RegId dst = kNoReg;
    RegId src1 = kNoReg;
    RegId src2 = kNoReg;
    RegId src3 = kNoReg;
    uint8_t fu = 0;           ///< FuClass, pre-resolved
    uint8_t latency = 0;      ///< execute latency, pre-resolved
    uint8_t flags = 0;        ///< kFlag* bits below

    static constexpr uint8_t kFlagWritesDst = 1u << 0;
    static constexpr uint8_t kFlagIsLoad = 1u << 1;
    static constexpr uint8_t kFlagIsStore = 1u << 2;
    static constexpr uint8_t kFlagImmSrc2 = 1u << 3;
    static constexpr uint8_t kFlagResolvePathTaken = 1u << 4;

    bool writesDst() const { return flags & kFlagWritesDst; }
    bool isLoad() const { return flags & kFlagIsLoad; }
    bool isStore() const { return flags & kFlagIsStore; }
    bool hasImmSrc2() const { return flags & kFlagImmSrc2; }
    bool resolvePathTaken() const
    {
        return flags & kFlagResolvePathTaken;
    }
};

class DecodedProgram
{
  public:
    /**
     * Decode prog against an I-cache line size (the lineTag inputs).
     * A simulation whose config uses a different line size ignores the
     * tags and re-masks the PC itself.
     */
    static DecodedProgram decode(const Program &prog,
                                 unsigned line_bytes);

    const DecodedInst *insts() const { return insts_.data(); }
    size_t size() const { return insts_.size(); }
    unsigned lineBytes() const { return line_bytes_; }

    /**
     * Largest stall-accounting key any BR/RESOLVE reports, or kNoInst
     * when the program has none — sizes the dense per-branch stall
     * accumulators exactly like the reference path's program scan.
     */
    InstId maxStallKey() const { return max_stall_key_; }

  private:
    std::vector<DecodedInst> insts_;
    unsigned line_bytes_ = 0;
    InstId max_stall_key_ = kNoInst;
};

} // namespace vanguard

#endif // VANGUARD_EXEC_DECODED_PROGRAM_HH
