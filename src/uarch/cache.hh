/**
 * @file
 * Set-associative cache model with LRU replacement, and the three-level
 * hierarchy + main memory of the paper's Table 1.
 */

#ifndef VANGUARD_UARCH_CACHE_HH
#define VANGUARD_UARCH_CACHE_HH

#include <cstddef>
#include <cstdint>
#include <vector>

#include "uarch/config.hh"

namespace vanguard {

/** One cache level: LRU, write-allocate, tag-only (no data stored). */
class Cache
{
  public:
    explicit Cache(const CacheConfig &cfg);

    /** True on hit. Misses allocate the line (caller recurses down). */
    bool access(uint64_t addr);

    /** Probe without allocation or LRU update. */
    bool contains(uint64_t addr) const;

    void invalidateAll();

    uint64_t hits() const { return hits_; }
    uint64_t misses() const { return misses_; }
    uint64_t accesses() const { return hits_ + misses_; }

    double
    missRate() const
    {
        return accesses() == 0
            ? 0.0
            : static_cast<double>(misses_) /
                  static_cast<double>(accesses());
    }

    unsigned latency() const { return cfg_.latency; }
    unsigned lineBytes() const { return cfg_.lineBytes; }

  private:
    struct Line
    {
        bool valid = false;
        uint64_t tag = 0;
        uint64_t lru = 0;
    };

    uint64_t setIndex(uint64_t addr) const;
    uint64_t tagOf(uint64_t addr) const;

    CacheConfig cfg_;
    unsigned num_sets_;
    std::vector<Line> lines_;   ///< num_sets_ x ways, row-major
    uint64_t tick_ = 0;
    uint64_t hits_ = 0;
    uint64_t misses_ = 0;
};

/** Result of one hierarchy access. */
struct MemAccessResult
{
    unsigned latency = 0;   ///< total load-to-use latency in cycles
    unsigned level = 1;     ///< 1=L1, 2=L2, 3=L3, 4=memory
};

/**
 * L1I + L1D backed by a unified L2, L3, and main memory. Instruction
 * and data accesses share L2/L3 state (unified, as in Table 1).
 */
class MemoryHierarchy
{
  public:
    explicit MemoryHierarchy(const MachineConfig &cfg);

    /** Data-side access (loads and stores; write-allocate). */
    MemAccessResult dataAccess(uint64_t addr);

    /**
     * Instruction-side access for one cache line. Returns the *extra*
     * fetch stall beyond the pipelined L1I hit path (0 on hit).
     */
    unsigned instAccess(uint64_t line_addr);

    /** Enable next-line instruction prefetching. */
    void setNextLinePrefetch(bool enable)
    {
        next_line_prefetch_ = enable;
    }

    uint64_t instPrefetches() const { return inst_prefetches_; }

    const Cache &l1i() const { return l1i_; }
    const Cache &l1d() const { return l1d_; }
    const Cache &l2() const { return l2_; }
    const Cache &l3() const { return l3_; }

  private:
    Cache l1i_;
    Cache l1d_;
    Cache l2_;
    Cache l3_;
    unsigned mem_latency_;
    bool next_line_prefetch_ = false;
    uint64_t inst_prefetches_ = 0;
};

} // namespace vanguard

#endif // VANGUARD_UARCH_CACHE_HH
