/**
 * @file
 * Set-associative cache model with LRU replacement, and the three-level
 * hierarchy + main memory of the paper's Table 1.
 */

#ifndef VANGUARD_UARCH_CACHE_HH
#define VANGUARD_UARCH_CACHE_HH

#include <bit>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "uarch/config.hh"

namespace vanguard {

/** One cache level: LRU, write-allocate, tag-only (no data stored). */
class Cache
{
  public:
    explicit Cache(const CacheConfig &cfg);

    /**
     * True on hit. Misses allocate the line (caller recurses down).
     * Defined inline: this is the innermost call of every simulated
     * memory access, and the set/tag math strength-reduces to
     * shift/mask for power-of-two geometries (the modulo fallback keeps
     * shapes like the Sec. 6.1 24KB I$ expressible).
     */
    bool
    access(uint64_t addr)
    {
        uint64_t line = lineOf(addr);
        uint64_t set = sets_pow2_ ? (line & set_mask_) : (line % num_sets_);
        uint64_t tag = sets_pow2_ ? (line >> set_shift_) : (line / num_sets_);
        size_t row = set * cfg_.ways;
        uint64_t *tags = &tags_[row];
        uint64_t vm = valid_[set];
        ++tick_;

        // MRU filter: sets exhibit way locality, so re-checking the
        // most recently touched way first turns the common repeat-hit
        // into a single tag compare. Pure fast path — a hit is a hit
        // whichever compare found it, so hit/miss/LRU state is
        // unchanged.
        unsigned m = mru_[set];
        if (((vm >> m) & 1) != 0 && tags[m] == tag) {
            lrus_[row + m] = tick_;
            ++hits_;
            return true;
        }

        // The hit scan reads only the contiguous tag row (one host
        // cache line for the common 8-way geometry) plus the per-set
        // valid bitmask; LRU state is untouched until the outcome is
        // known. Victim choice matches the original AoS scan: the
        // first invalid way, else the lowest-lru valid way,
        // first-on-tie.
        for (unsigned w = 0; w < cfg_.ways; ++w) {
            if (((vm >> w) & 1) != 0 && tags[w] == tag) {
                lrus_[row + w] = tick_;
                mru_[set] = static_cast<uint8_t>(w);
                ++hits_;
                return true;
            }
        }
        ++misses_;
        unsigned victim;
        if (vm != full_mask_) {
            victim = static_cast<unsigned>(std::countr_one(vm));
        } else {
            const uint64_t *lrus = &lrus_[row];
            victim = 0;
            for (unsigned w = 1; w < cfg_.ways; ++w)
                if (lrus[w] < lrus[victim])
                    victim = w;
        }
        valid_[set] = vm | (uint64_t{1} << victim);
        tags[victim] = tag;
        lrus_[row + victim] = tick_;
        mru_[set] = static_cast<uint8_t>(victim);
        return false;
    }

    /** Probe without allocation or LRU update. */
    bool contains(uint64_t addr) const;

    void invalidateAll();

    uint64_t hits() const { return hits_; }
    uint64_t misses() const { return misses_; }
    uint64_t accesses() const { return hits_ + misses_; }

    double
    missRate() const
    {
        return accesses() == 0
            ? 0.0
            : static_cast<double>(misses_) /
                  static_cast<double>(accesses());
    }

    unsigned latency() const { return cfg_.latency; }
    unsigned lineBytes() const { return cfg_.lineBytes; }

  private:
    uint64_t setIndex(uint64_t addr) const;
    uint64_t tagOf(uint64_t addr) const;

    uint64_t
    lineOf(uint64_t addr) const
    {
        return line_pow2_ ? (addr >> line_shift_)
                          : (addr / cfg_.lineBytes);
    }

    CacheConfig cfg_;
    unsigned num_sets_;
    // Structure-of-arrays line state, num_sets_ x ways row-major, with
    // validity packed one bitmask per set (hence ways <= 64, asserted
    // in the constructor). The hit scan touches tags_ only; lrus_ is
    // read on the miss path and written once per access.
    std::vector<uint64_t> tags_;
    std::vector<uint64_t> lrus_;
    std::vector<uint64_t> valid_;   ///< per-set way bitmask
    std::vector<uint8_t> mru_;      ///< per-set last-touched way
    uint64_t full_mask_ = 0;        ///< valid_ value when all ways live
    uint64_t tick_ = 0;
    uint64_t hits_ = 0;
    uint64_t misses_ = 0;

    // Strength-reduction constants derived from the geometry in the
    // constructor; the *_pow2_ flags select shift/mask vs div/mod.
    bool line_pow2_ = false;
    bool sets_pow2_ = false;
    unsigned line_shift_ = 0;
    unsigned set_shift_ = 0;
    uint64_t set_mask_ = 0;
};

/** Result of one hierarchy access. */
struct MemAccessResult
{
    unsigned latency = 0;   ///< total load-to-use latency in cycles
    unsigned level = 1;     ///< 1=L1, 2=L2, 3=L3, 4=memory
};

/**
 * L1I + L1D backed by a unified L2, L3, and main memory. Instruction
 * and data accesses share L2/L3 state (unified, as in Table 1).
 */
class MemoryHierarchy
{
  public:
    explicit MemoryHierarchy(const MachineConfig &cfg);

    /** Data-side access (loads and stores; write-allocate). Inline for
     *  the same reason as Cache::access — once per simulated LD/ST. */
    MemAccessResult
    dataAccess(uint64_t addr)
    {
        MemAccessResult r;
        if (l1d_.access(addr)) {
            r.latency = l1d_.latency();
            r.level = 1;
            return r;
        }
        if (l2_.access(addr)) {
            r.latency = l2_.latency();
            r.level = 2;
            return r;
        }
        if (l3_.access(addr)) {
            r.latency = l3_.latency();
            r.level = 3;
            return r;
        }
        r.latency = mem_latency_;
        r.level = 4;
        return r;
    }

    /**
     * Instruction-side access for one cache line. Returns the *extra*
     * fetch stall beyond the pipelined L1I hit path (0 on hit).
     * Inline like dataAccess: once per fetched I-line.
     */
    unsigned
    instAccess(uint64_t line_addr)
    {
        unsigned penalty;
        if (l1i_.access(line_addr)) {
            penalty = 0;
        } else if (l2_.access(line_addr)) {
            penalty = l2_.latency();
        } else if (l3_.access(line_addr)) {
            penalty = l3_.latency();
        } else {
            penalty = mem_latency_;
        }

        // Optimistic next-line prefetch: bring the sequentially next
        // line into the I$ (and the levels below) off the critical
        // path.
        if (next_line_prefetch_) {
            uint64_t next = line_addr + l1i_.lineBytes();
            if (!l1i_.contains(next)) {
                ++inst_prefetches_;
                l1i_.access(next);
                if (!l2_.contains(next)) {
                    l2_.access(next);
                    l3_.access(next);
                }
            }
        }
        return penalty;
    }

    /** Enable next-line instruction prefetching. */
    void setNextLinePrefetch(bool enable)
    {
        next_line_prefetch_ = enable;
    }

    uint64_t instPrefetches() const { return inst_prefetches_; }

    const Cache &l1i() const { return l1i_; }
    const Cache &l1d() const { return l1d_; }
    const Cache &l2() const { return l2_; }
    const Cache &l3() const { return l3_; }

  private:
    Cache l1i_;
    Cache l1d_;
    Cache l2_;
    Cache l3_;
    unsigned mem_latency_;
    bool next_line_prefetch_ = false;
    uint64_t inst_prefetches_ = 0;
};

} // namespace vanguard

#endif // VANGUARD_UARCH_CACHE_HH
