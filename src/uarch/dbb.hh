/**
 * @file
 * The Decomposed Branch Buffer (paper Sec. 4).
 *
 * A small front-end FIFO that re-associates a branch's outcome
 * (observed at the RESOLVE instruction) with its prediction (made at
 * the PREDICT instruction, at a different PC and time). Each entry
 * holds the PREDICT's PC, the predicted direction, and "the indices
 * into the branch prediction table hierarchy and the prediction
 * metadata" (our PredMeta) needed to train the predictor later.
 *
 * Operations (paper Fig. 7):
 *  - insert: at PREDICT decode, write the entry at the tail; the
 *    PREDICT is then dropped from the fetch buffer.
 *  - associate: a RESOLVE at decode reads the tail pointer and carries
 *    that index down the pipeline (always its immediately preceding
 *    PREDICT, since the compiler never reorders/interleaves pairs).
 *  - resolve: at RESOLVE execute, the carried index reads the entry
 *    out and the predictor is trained; the entry is freed in FIFO
 *    order.
 *  - recover: on a *non-decomposed* branch mispredict, the tail
 *    pointer is rewound alongside branch-history recovery.
 *  - invalidate-all: optional handling for exceptional control flow
 *    (interrupts/context switches), suppressing stale updates.
 */

#ifndef VANGUARD_UARCH_DBB_HH
#define VANGUARD_UARCH_DBB_HH

#include <cstddef>
#include <cstdint>

#include "bpred/predictor.hh"
#include "support/circular_buffer.hh"

namespace vanguard {

struct DbbEntry
{
    uint64_t predictPc = 0;
    PredMeta meta;
    bool predictedTaken = false;
    bool valid = true;
};

class DecomposedBranchBuffer
{
  public:
    explicit DecomposedBranchBuffer(size_t entries = 16)
        : buf_(entries)
    {
    }

    size_t capacity() const { return buf_.capacity(); }
    size_t occupancy() const { return buf_.size(); }
    bool full() const { return buf_.full(); }
    bool empty() const { return buf_.empty(); }

    /** PREDICT decode: insert at the tail; returns the slot index. */
    size_t
    insert(uint64_t predict_pc, const PredMeta &meta, bool taken)
    {
        size_t slot = buf_.push({predict_pc, meta, taken, true});
        max_occupancy_ = std::max(max_occupancy_, buf_.size());
        return slot;
    }

    /** RESOLVE decode: the index the resolve will carry (the tail). */
    size_t associateIndex() const { return buf_.lastIndex(); }

    /** RESOLVE execute: free the oldest entry and return it. */
    DbbEntry resolveOldest() { return buf_.pop(); }

    /** Direct slot read (what the update datapath does). */
    const DbbEntry &at(size_t slot) const { return buf_.at(slot); }

    /** Non-decomposed mispredict recovery: squash the n youngest. */
    void recoverTail(size_t n) { buf_.squashYoungest(n); }

    /** Exceptional-control-flow handling: poison all live entries. */
    void
    invalidateAll()
    {
        for (size_t i = 0; i < buf_.capacity(); ++i)
            buf_.at(i).valid = false;
    }

    size_t maxOccupancy() const { return max_occupancy_; }

  private:
    CircularBuffer<DbbEntry> buf_;
    size_t max_occupancy_ = 0;
};

} // namespace vanguard

#endif // VANGUARD_UARCH_DBB_HH
