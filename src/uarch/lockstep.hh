/**
 * @file
 * Lockstep differential oracle for the timing simulator.
 *
 * The functional Interpreter (exec/interpreter.hh) is the golden
 * model: the transformation contract says a compiled configuration
 * retires exactly the original kernel's committed store stream and
 * final architectural registers, for any PREDICT answer. The checker
 * holds a golden run's retired state and is fed the timing
 * simulator's retirement events online; the first mismatching store
 * — or a final-register mismatch at HALT — raises
 * SimError(Divergence) naming the divergence point. This is the
 * mipt-mips/flexus "perf model vs functional model" lockstep check:
 * it catches subtle model-vs-oracle drift (the failure class the
 * timing-non-predictability literature warns about) at the retired
 * instruction where it first becomes architectural, not at the end
 * of a million-cycle run.
 *
 * Budget asymmetry: if the golden run hit its own instruction limit
 * before HALT, stores past the recorded prefix are not comparable and
 * are accepted; final registers are only compared when both runs
 * halted.
 */

#ifndef VANGUARD_UARCH_LOCKSTEP_HH
#define VANGUARD_UARCH_LOCKSTEP_HH

#include <cstdint>
#include <utility>
#include <vector>

#include "isa/reg.hh"
#include "support/logging.hh"

namespace vanguard {

/** Retired state of a golden functional run. */
struct LockstepOracle
{
    std::vector<std::pair<uint64_t, int64_t>> stores;
    int64_t archRegs[kNumArchRegs] = {};
    bool halted = false;   ///< golden run reached HALT (not InstLimit)
};

class LockstepChecker
{
  public:
    explicit LockstepChecker(LockstepOracle oracle)
        : oracle_(std::move(oracle))
    {}

    /** Compare one committed store against the golden stream. */
    void
    onStore(uint64_t addr, int64_t value)
    {
        size_t i = next_++;
        if (i >= oracle_.stores.size()) {
            if (oracle_.halted) {
                vg_throw(Divergence,
                         "store #%zu (addr 0x%llx value %lld) beyond "
                         "golden stream of %zu stores",
                         i, static_cast<unsigned long long>(addr),
                         static_cast<long long>(value),
                         oracle_.stores.size());
            }
            return; // golden run was truncated; prefix exhausted
        }
        const auto &want = oracle_.stores[i];
        if (addr != want.first || value != want.second) {
            vg_throw(Divergence,
                     "store #%zu mismatch: retired addr 0x%llx value "
                     "%lld, golden addr 0x%llx value %lld",
                     i, static_cast<unsigned long long>(addr),
                     static_cast<long long>(value),
                     static_cast<unsigned long long>(want.first),
                     static_cast<long long>(want.second));
        }
    }

    /** Compare final architectural registers once the sim halts. */
    void
    onHalt(const int64_t *regs)
    {
        if (!oracle_.halted)
            return;
        if (next_ < oracle_.stores.size()) {
            vg_throw(Divergence,
                     "halted after %zu stores; golden stream has %zu",
                     next_, oracle_.stores.size());
        }
        for (unsigned r = 0; r < kNumArchRegs; ++r) {
            if (regs[r] != oracle_.archRegs[r]) {
                vg_throw(Divergence,
                         "final r%u mismatch: retired %lld, golden "
                         "%lld",
                         r, static_cast<long long>(regs[r]),
                         static_cast<long long>(oracle_.archRegs[r]));
            }
        }
    }

    size_t comparedStores() const { return next_; }

  private:
    LockstepOracle oracle_;
    size_t next_ = 0;
};

} // namespace vanguard

#endif // VANGUARD_UARCH_LOCKSTEP_HH
