/**
 * @file
 * Pipeline tracing: per-instruction fetch/issue/complete cycles for a
 * window of the simulation, plus a text Gantt renderer. The debugging
 * view that makes in-order stalls visible: a branch whose condition
 * waits on a missing load shows as a long F......I gap that the
 * decomposed version fills with hoisted loads.
 */

#ifndef VANGUARD_UARCH_TRACE_HH
#define VANGUARD_UARCH_TRACE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "isa/opcode.hh"

namespace vanguard {

struct TraceEntry
{
    uint64_t pc = 0;
    Opcode op = Opcode::NOP;
    uint64_t fetchCycle = 0;
    uint64_t issueCycle = 0;    ///< == decode for non-issuing ops
    uint64_t doneCycle = 0;
    bool issued = false;        ///< false: dropped at decode
    bool redirected = false;    ///< caused a fetch redirect
};

/** Collects the first `limit` instructions' timing. */
class PipelineTrace
{
  public:
    explicit PipelineTrace(size_t limit = 256) : limit_(limit)
    {
        // Pre-size the window so recording never regrows mid-run.
        entries_.reserve(limit_);
    }

    /** True while the window still accepts entries (limit 0 never
     *  does); callers may also record() unconditionally and let the
     *  window count the overflow itself. */
    bool
    wants() const
    {
        return limit_ != 0 && entries_.size() < limit_;
    }

    void
    record(const TraceEntry &entry)
    {
        if (wants())
            entries_.push_back(entry);
        else
            ++dropped_;
    }

    const std::vector<TraceEntry> &entries() const { return entries_; }

    /** Entries offered after the window filled (shown by render()). */
    uint64_t dropped() const { return dropped_; }

    void
    clear()
    {
        entries_.clear();
        dropped_ = 0;
    }

    /**
     * Render a text timeline: one row per instruction, one column per
     * cycle. 'F' fetch, '-' in flight, 'I' issue, '=' executing,
     * 'D' done, '!' redirect. Rows are clipped to `max_cycles`
     * columns from the window's first fetch. A footer reports how
     * many entries overflowed the window, so a truncated view is
     * never mistaken for the whole run.
     */
    std::string render(size_t max_cycles = 100) const;

  private:
    size_t limit_;
    uint64_t dropped_ = 0;
    std::vector<TraceEntry> entries_;
};

} // namespace vanguard

#endif // VANGUARD_UARCH_TRACE_HH
