/**
 * @file
 * Pipeline tracing: per-instruction fetch/issue/complete cycles for a
 * window of the simulation, plus a text Gantt renderer. The debugging
 * view that makes in-order stalls visible: a branch whose condition
 * waits on a missing load shows as a long F......I gap that the
 * decomposed version fills with hoisted loads.
 */

#ifndef VANGUARD_UARCH_TRACE_HH
#define VANGUARD_UARCH_TRACE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "isa/opcode.hh"

namespace vanguard {

struct TraceEntry
{
    uint64_t pc = 0;
    Opcode op = Opcode::NOP;
    uint64_t fetchCycle = 0;
    uint64_t issueCycle = 0;    ///< == decode for non-issuing ops
    uint64_t doneCycle = 0;
    bool issued = false;        ///< false: dropped at decode
    bool redirected = false;    ///< caused a fetch redirect
};

/** Collects the first `limit` instructions' timing. */
class PipelineTrace
{
  public:
    explicit PipelineTrace(size_t limit = 256) : limit_(limit)
    {
        // Pre-size the window so recording never regrows mid-run.
        entries_.reserve(limit_);
    }

    bool
    wants() const
    {
        return entries_.size() < limit_;
    }

    void
    record(const TraceEntry &entry)
    {
        if (wants())
            entries_.push_back(entry);
    }

    const std::vector<TraceEntry> &entries() const { return entries_; }
    void clear() { entries_.clear(); }

    /**
     * Render a text timeline: one row per instruction, one column per
     * cycle. 'F' fetch, '-' in flight, 'I' issue, '=' executing,
     * 'D' done, '!' redirect. Rows are clipped to `max_cycles`
     * columns from the window's first fetch.
     */
    std::string render(size_t max_cycles = 100) const;

  private:
    size_t limit_;
    std::vector<TraceEntry> entries_;
};

} // namespace vanguard

#endif // VANGUARD_UARCH_TRACE_HH
