#include "uarch/config.hh"

#include <sstream>

namespace vanguard {

std::string
MachineConfig::toString() const
{
    std::ostringstream os;
    os << "Bpred            | " << predictor << ", "
       << (1u << btbIndexBits) << "-entry BTB, " << rasEntries
       << "-entry RAS\n";
    os << "Front-End        | " << frontendStages << " stages, "
       << width << "-wide fetch/decode/dispatch, "
       << fetchBufferEntries << "-entry FetchBuffer\n";
    os << "Execution Ports  | " << (memPorts + intPorts + fpPorts)
       << " (" << memPorts << " LD/ST, " << intPorts << " INT, "
       << fpPorts << " FP), issue width " << width << "\n";
    os << "DBB              | " << dbbEntries << " entries, shadow"
       << " commit " << (shadowCommit ? "on" : "off") << "\n";
    os << "L1 Caches        | " << l1d.ways << "-way " << l1d.sizeKB
       << "KB L1-D$, " << l1i.ways << "-way " << l1i.sizeKB
       << "KB L1-I$, " << l1d.lineBytes << "B lines, " << l1d.latency
       << "-cycle latency\n";
    os << "L2 Cache         | " << l2.ways << "-way " << l2.sizeKB
       << "KB unified, " << l2.latency << "-cycle latency\n";
    os << "L3 Cache         | " << l3.ways << "-way "
       << l3.sizeKB / 1024 << "MB LLC, " << l3.latency
       << "-cycle latency\n";
    os << "Miss Handling    | " << mshrEntries << "-entry Miss Buffer\n";
    os << "Main Memory      | " << memLatency << "-cycle latency\n";
    return os.str();
}

} // namespace vanguard
