/**
 * @file
 * Machine configuration — the paper's Table 1, parameterized.
 *
 * | Bpred      | GShare, 24 KB 3-table; 4K BTB; 64-entry RAS        |
 * | Front-End  | 5 stages, 2/4/8-wide, 32-entry FetchBuffer         |
 * | Exec Ports | varied with width                                  |
 * | FUs        | up to 2 LD/ST, 2 INT, 4 FP, 1-cycle bypass         |
 * | L1         | 8-way 32KB D$, 4-way 32KB I$, 64B lines, 4 cycles  |
 * | L2         | 16-way 256KB unified, 12 cycles                    |
 * | L3         | 32-way 4MB, 25 cycles                              |
 * | Miss Hand. | 64-entry miss buffer                               |
 * | Memory     | 140 cycles                                         |
 */

#ifndef VANGUARD_UARCH_CONFIG_HH
#define VANGUARD_UARCH_CONFIG_HH

#include <string>

namespace vanguard {

struct CacheConfig
{
    unsigned sizeKB = 32;
    unsigned ways = 8;
    unsigned lineBytes = 64;
    unsigned latency = 4;   ///< total load-to-use latency on hit here
};

struct MachineConfig
{
    unsigned width = 4;             ///< fetch/decode/issue width
    unsigned frontendStages = 5;
    unsigned fetchBufferEntries = 32;

    unsigned memPorts = 2;
    unsigned intPorts = 2;
    unsigned fpPorts = 4;

    std::string predictor = "gshare3";
    unsigned btbIndexBits = 12;     ///< 4K-entry BTB
    unsigned rasEntries = 64;

    unsigned dbbEntries = 16;       ///< Decomposed Branch Buffer size
    bool shadowCommit = true;       ///< fold temp->arch commit MOVs

    /** Next-line instruction prefetch (ablation knob; off matches
     *  the paper's Table-1 machine). */
    bool icacheNextLinePrefetch = false;

    CacheConfig l1i{32, 4, 64, 4};
    CacheConfig l1d{32, 8, 64, 4};
    CacheConfig l2{256, 16, 64, 12};
    CacheConfig l3{4096, 32, 64, 25};
    unsigned memLatency = 140;
    unsigned mshrEntries = 64;      ///< miss buffer entries

    /** The paper's three evaluated widths with ports scaled. */
    static MachineConfig
    widthVariant(unsigned w)
    {
        MachineConfig cfg;
        cfg.width = w;
        switch (w) {
          case 2:
            cfg.memPorts = 1;
            cfg.intPorts = 1;
            cfg.fpPorts = 2;
            break;
          case 4:
            break; // Table 1 defaults
          case 8:
            cfg.memPorts = 2;
            cfg.intPorts = 4;
            cfg.fpPorts = 4;
            break;
          default:
            break;
        }
        return cfg;
    }

    /** Render as a Table-1-like description. */
    std::string toString() const;
};

} // namespace vanguard

#endif // VANGUARD_UARCH_CONFIG_HH
