#include "uarch/pipeline.hh"

#include <cstring>
#include <deque>
#include <set>

#include "bpred/btb.hh"
#include "support/fault_inject.hh"
#include "support/logging.hh"

namespace vanguard {

namespace {

/** Online cycle-accounting state for the in-order pipeline. */
class TimingModel
{
  public:
    TimingModel(const Program &prog, Memory &mem,
                DirectionPredictor &predictor, const MachineConfig &cfg,
                const SimOptions &opts)
        : prog_(prog), predictor_(predictor), cfg_(cfg), opts_(opts),
          hier_(cfg), btb_(cfg.btbIndexBits), dbb_(cfg.dbbEntries),
          exec_(prog, mem),
          fetch_ring_(cfg.fetchBufferEntries, 0)
    {
        exec_.setPredictHook([this](const LaidInst &li) {
            return onPredictFetch(li);
        });
        if (opts_.lockstep != nullptr) {
            exec_.setStoreHook([this](uint64_t addr, int64_t value) {
                opts_.lockstep->onStore(addr, value);
            });
        }

        // Dense per-branch stall accumulators, sized once up front so
        // the hot loop never touches the hash map (and does nothing at
        // all when collection is off). Sized by the largest id a
        // BR/RESOLVE can report, not by program length.
        if (opts_.collectBranchStalls) {
            InstId max_id = 0;
            bool any = false;
            for (size_t i = 0; i < prog_.size(); ++i) {
                const Instruction &inst = prog_.at(i).inst;
                InstId key = kNoInst;
                if (inst.op == Opcode::BR)
                    key = inst.id;
                else if (inst.op == Opcode::RESOLVE)
                    key = inst.origBranch;
                if (key != kNoInst) {
                    max_id = std::max(max_id, key);
                    any = true;
                }
            }
            if (any) {
                stall_cycles_by_id_.assign(max_id + 1, 0);
                stall_events_by_id_.assign(max_id + 1, 0);
            }
        }
    }

    SimStats run();

  private:
    // --- fetch-side helpers -------------------------------------------

    /** Fetch one instruction; returns its fetch cycle. */
    uint64_t
    fetchInst(const LaidInst &li, uint64_t inst_seq)
    {
        uint64_t f = next_fetch_cycle_;

        // Fetch buffer back-pressure: slot of inst (seq - N) must have
        // drained.
        size_t n = cfg_.fetchBufferEntries;
        if (inst_seq >= n) {
            uint64_t freed = fetch_ring_[inst_seq % n];
            if (freed > f) {
                f = freed;
                ++stats_.fetchBufferStalls;
            }
        }

        // I-cache: access on each new line.
        uint64_t line = li.pc & ~uint64_t{cfg_.l1i.lineBytes - 1};
        if (line != cur_fetch_line_) {
            ++stats_.icacheLineAccesses;
            unsigned extra = hier_.instAccess(line);
            if (extra > 0) {
                ++stats_.icacheMisses;
                f += extra;
            }
            cur_fetch_line_ = line;
        }

        // Bandwidth: width insts per cycle.
        if (f > cur_fetch_cycle_) {
            cur_fetch_cycle_ = f;
            fetched_in_cycle_ = 0;
        }
        if (fetched_in_cycle_ >= cfg_.width) {
            ++cur_fetch_cycle_;
            fetched_in_cycle_ = 0;
        }
        f = cur_fetch_cycle_;
        ++fetched_in_cycle_;
        ++stats_.fetched;
        next_fetch_cycle_ = cur_fetch_cycle_;
        return f;
    }

    /** Record when an instruction leaves the fetch buffer. */
    void
    recordDrain(uint64_t inst_seq, uint64_t leave_cycle)
    {
        fetch_ring_[inst_seq % cfg_.fetchBufferEntries] = leave_cycle;
    }

    /** Steer fetch for a taken (correctly-predicted) control transfer. */
    void
    takenRedirect(uint64_t pc, uint64_t target, uint64_t fetch_cycle,
                  uint64_t decode_cycle)
    {
        uint64_t btb_target = 0;
        bool hit = btb_.lookup(pc, btb_target) && btb_target == target;
        next_fetch_cycle_ =
            std::max(next_fetch_cycle_,
                     hit ? fetch_cycle + 1 : decode_cycle + 1);
        btb_.insert(pc, target);
        cur_fetch_line_ = ~uint64_t{0};
    }

    /** Squash-and-redirect after a mispredict resolves at `done`. */
    void
    mispredictRedirect(uint64_t done)
    {
        next_fetch_cycle_ = std::max(next_fetch_cycle_, done);
        cur_fetch_line_ = ~uint64_t{0};
    }

    // --- issue-side helpers -------------------------------------------

    unsigned
    portCap(FuClass cls) const
    {
        switch (cls) {
          case FuClass::Mem:
            return cfg_.memPorts;
          case FuClass::IntAlu:
            return cfg_.intPorts;
          case FuClass::Fp:
            return cfg_.fpPorts;
          case FuClass::None:
            return cfg_.width;
        }
        return cfg_.width;
    }

    /** In-order issue: find the first cycle >= earliest with a free
     *  slot and FU port, and claim them. */
    uint64_t
    computeIssue(uint64_t earliest, FuClass cls)
    {
        uint64_t c = std::max(earliest, prev_issue_cycle_);
        for (;;) {
            if (c > cur_issue_cycle_) {
                cur_issue_cycle_ = c;
                slots_used_ = 0;
                std::memset(ports_used_, 0, sizeof(ports_used_));
            }
            unsigned cls_idx = static_cast<unsigned>(cls);
            if (slots_used_ < cfg_.width &&
                ports_used_[cls_idx] < portCap(cls)) {
                ++slots_used_;
                ++ports_used_[cls_idx];
                prev_issue_cycle_ = c;
                return c;
            }
            ++c;
        }
    }

    uint64_t
    srcReady(const Instruction &inst) const
    {
        uint64_t ready = 0;
        for (RegId src : {inst.src1, inst.src2, inst.src3})
            if (src != kNoReg)
                ready = std::max(ready, reg_ready_[src]);
        return ready;
    }

    /**
     * Branch-resolution stall accounting (the paper's ASPCB): cycles
     * between the branch reaching the issue stage and actually
     * issuing — queueing behind older in-flight work plus waiting for
     * its own condition operands.
     */
    void
    noteBranchStall(const Instruction &inst, uint64_t issue,
                    uint64_t enter_issue)
    {
        uint64_t stall = issue - enter_issue;
        stats_.branchStallCycles += stall;
        ++stats_.branchStallEvents;
        if (opts_.collectBranchStalls) {
            InstId key = inst.op == Opcode::RESOLVE ? inst.origBranch
                                                    : inst.id;
            if (key < stall_cycles_by_id_.size()) {
                stall_cycles_by_id_[key] += stall;
                ++stall_events_by_id_[key];
            }
        }
    }

    void
    traceRecord(const LaidInst &li, uint64_t fetch, uint64_t issue,
                uint64_t done, bool issued, bool redirected)
    {
        if (opts_.trace != nullptr) {
            // Unconditional: the window itself counts overflow so the
            // Gantt footer can report how much it dropped.
            opts_.trace->record({li.pc, li.inst.op, fetch, issue, done,
                                 issued, redirected});
        }
    }

    // --- decomposed-branch front end ----------------------------------

    /** Predict hook: called by the executor when a PREDICT is reached;
     *  the returned direction is the architectural path. */
    bool
    onPredictFetch(const LaidInst &li)
    {
        PredMeta meta;
        bool dir;
        if (opts_.predictOutcomes != nullptr) {
            vg_assert(predict_seq_ < opts_.predictOutcomes->size(),
                      "prerecorded predict outcomes exhausted");
            dir = predictor_.predictWithOracle(
                li.pc, (*opts_.predictOutcomes)[predict_seq_], meta);
        } else {
            dir = predictor_.predict(li.pc, meta);
        }
        ++predict_seq_;
        pending_predict_ = {li.pc, meta, dir, true};
        return dir;
    }

    // --- per-opcode timing --------------------------------------------

    void timeInst(const ProgramExecutor::StepInfo &info,
                  uint64_t inst_seq);

    const Program &prog_;
    DirectionPredictor &predictor_;
    const MachineConfig &cfg_;
    const SimOptions &opts_;

    MemoryHierarchy hier_;
    BranchTargetBuffer btb_;
    DecomposedBranchBuffer dbb_;
    ProgramExecutor exec_;
    SimStats stats_;

    // fetch state
    uint64_t next_fetch_cycle_ = 0;
    uint64_t cur_fetch_cycle_ = 0;
    unsigned fetched_in_cycle_ = 0;
    uint64_t cur_fetch_line_ = ~uint64_t{0};
    std::vector<uint64_t> fetch_ring_;

    // issue state
    uint64_t prev_issue_cycle_ = 0;
    uint64_t cur_issue_cycle_ = 0;
    unsigned slots_used_ = 0;
    unsigned ports_used_[4] = {};
    uint64_t reg_ready_[kNumRegs] = {};

    // memory-system state
    std::multiset<uint64_t> outstanding_misses_;

    // DBB timing state: free cycles of inserted entries, FIFO order.
    std::deque<uint64_t> dbb_free_cycles_;

    // Per-branch stall accumulators (only sized when
    // opts.collectBranchStalls); densified into stats_.branchStalls
    // once at the end of run().
    std::vector<uint64_t> stall_cycles_by_id_;
    std::vector<uint64_t> stall_events_by_id_;

    uint64_t predict_seq_ = 0;
    DbbEntry pending_predict_;
    uint64_t max_done_ = 0;
};

void
TimingModel::timeInst(const ProgramExecutor::StepInfo &info,
                      uint64_t inst_seq)
{
    const LaidInst &li = *info.inst;
    const Instruction &inst = li.inst;

    uint64_t f = fetchInst(li, inst_seq);
    uint64_t decode = f + 1;
    uint64_t enter_issue = f + cfg_.frontendStages - 1;
    max_done_ = std::max(max_done_, enter_issue);

    switch (inst.op) {
      case Opcode::HALT:
        recordDrain(inst_seq, decode);
        traceRecord(li, f, decode, decode, false, false);
        stats_.halted = true;
        return;

      case Opcode::JMP:
        // Direct jumps are handled in the front end; no issue slot.
        recordDrain(inst_seq, decode);
        takenRedirect(li.pc, li.takenPc, f, decode);
        traceRecord(li, f, decode, decode, false, false);
        return;

      case Opcode::PREDICT: {
        ++stats_.predictsExecuted;
        // DBB insert at decode; stall the front end when full.
        while (!dbb_free_cycles_.empty() &&
               dbb_free_cycles_.front() <= decode) {
            dbb_free_cycles_.pop_front();
        }
        while (dbb_free_cycles_.size() >= cfg_.dbbEntries) {
            ++stats_.dbbFullStalls;
            decode = std::max(decode, dbb_free_cycles_.front() + 1);
            dbb_free_cycles_.pop_front();
            next_fetch_cycle_ =
                std::max(next_fetch_cycle_, decode - 1);
        }
        stats_.dbbMaxOccupancy =
            std::max<uint64_t>(stats_.dbbMaxOccupancy,
                               dbb_free_cycles_.size() + 1);
        dbb_.insert(pending_predict_.predictPc, pending_predict_.meta,
                    pending_predict_.predictedTaken);
        recordDrain(inst_seq, decode); // dropped after decode
        if (info.taken)
            takenRedirect(li.pc, li.takenPc, f, decode);
        traceRecord(li, f, decode, decode, false, false);
        return;
      }

      case Opcode::BR: {
        ++stats_.condBranches;
        PredMeta meta;
        bool pred =
            predictor_.predictWithOracle(li.pc, info.taken, meta);
        predictor_.updateHistory(info.taken);
        predictor_.update(li.pc, info.taken, meta);

        uint64_t earliest = std::max(enter_issue, srcReady(inst));
        uint64_t issue = computeIssue(earliest, FuClass::IntAlu);
        uint64_t done = issue + 1;
        max_done_ = std::max(max_done_, done);
        ++stats_.issued;
        recordDrain(inst_seq, issue);
        noteBranchStall(inst, issue, enter_issue);

        bool mispredicted = pred != info.taken;
        if (mispredicted) {
            ++stats_.brMispredicts;
            mispredictRedirect(done);
            if (info.taken)
                btb_.insert(li.pc, li.takenPc);
        } else if (info.taken) {
            takenRedirect(li.pc, li.takenPc, f, decode);
        }
        traceRecord(li, f, issue, done, true, mispredicted);
        return;
      }

      case Opcode::RESOLVE: {
        ++stats_.resolvesExecuted;
        // Associate with the oldest outstanding PREDICT (paper: the
        // tail-pointer index captured at decode) and train through it.
        DbbEntry entry = dbb_.resolveOldest();
        bool outcome = info.taken ? !inst.resolvePathTaken
                                  : inst.resolvePathTaken;
        if (entry.valid) {
            predictor_.updateHistory(outcome);
            predictor_.update(entry.predictPc, outcome, entry.meta);
        }

        uint64_t earliest = std::max(enter_issue, srcReady(inst));
        uint64_t issue = computeIssue(earliest, FuClass::IntAlu);
        uint64_t done = issue + 1;
        max_done_ = std::max(max_done_, done);
        ++stats_.issued;
        recordDrain(inst_seq, issue);
        noteBranchStall(inst, issue, enter_issue);
        dbb_free_cycles_.push_back(done);

        if (info.taken) {
            // The PREDICT was wrong: redirect to correction code.
            ++stats_.resolveRedirects;
            mispredictRedirect(done);
        }
        traceRecord(li, f, issue, done, true, info.taken);
        return;
      }

      default:
        break;
    }

    // Shadow-commit folding: temp->arch MOVs become rename updates.
    if (cfg_.shadowCommit && inst.op == Opcode::MOV &&
        isTempReg(inst.src1) && isArchReg(inst.dst)) {
        reg_ready_[inst.dst] = reg_ready_[inst.src1];
        ++stats_.foldedCommitMovs;
        recordDrain(inst_seq, decode);
        traceRecord(li, f, decode, decode, false, false);
        return;
    }

    if (opts_.hoistedMask != nullptr && inst.id != kNoInst &&
        inst.id < opts_.hoistedMask->size() &&
        (*opts_.hoistedMask)[inst.id]) {
        ++stats_.speculativeExecs;
    }

    uint64_t earliest = std::max(enter_issue, srcReady(inst));
    FuClass cls = inst.fuClass();
    uint64_t done;

    if (inst.isLoad()) {
        // Miss-buffer occupancy gating.
        while (!outstanding_misses_.empty() &&
               *outstanding_misses_.begin() <= earliest) {
            outstanding_misses_.erase(outstanding_misses_.begin());
        }
        while (outstanding_misses_.size() >= cfg_.mshrEntries) {
            ++stats_.mshrStalls;
            earliest = std::max(earliest,
                                *outstanding_misses_.begin());
            outstanding_misses_.erase(outstanding_misses_.begin());
        }
        uint64_t issue = computeIssue(earliest, cls);
        MemAccessResult res = hier_.dataAccess(info.memAddr);
        ++stats_.l1dAccesses;
        if (res.level >= 2)
            ++stats_.l1dMisses;
        if (res.level >= 3)
            ++stats_.l2Misses;
        if (res.level >= 4)
            ++stats_.l3Misses;
        done = issue + res.latency;
        if (res.level >= 2)
            outstanding_misses_.insert(done);
        reg_ready_[inst.dst] = done;
        recordDrain(inst_seq, issue);
    } else if (inst.isStore()) {
        uint64_t issue = computeIssue(earliest, cls);
        MemAccessResult res = hier_.dataAccess(info.memAddr);
        ++stats_.l1dAccesses;
        if (res.level >= 2)
            ++stats_.l1dMisses;
        if (res.level >= 3)
            ++stats_.l2Misses;
        if (res.level >= 4)
            ++stats_.l3Misses;
        // Stores retire through the store buffer; 1 cycle to the
        // pipeline.
        done = issue + 1;
        recordDrain(inst_seq, issue);
    } else {
        uint64_t issue = computeIssue(earliest, cls);
        done = issue + inst.latency();
        if (inst.writesDst())
            reg_ready_[inst.dst] = done;
        recordDrain(inst_seq, issue);
    }
    ++stats_.issued;
    max_done_ = std::max(max_done_, done);
    traceRecord(li, f, prev_issue_cycle_, done, true, false);
}

SimStats
TimingModel::run()
{
    uint64_t inst_seq = 0;
    uint64_t last_commit_cycle = 0;
    while (!exec_.halted() && stats_.dynamicInsts < opts_.maxInsts) {
        auto info = exec_.step();
        if (info.inst == nullptr)
            break;
        ++stats_.dynamicInsts;
        if (info.fault) {
            stats_.faulted = true;
            vg_throw(Fault,
                     "simulated program faulted at pc 0x%llx (inst %u, "
                     "%llu insts retired)",
                     static_cast<unsigned long long>(info.inst->pc),
                     info.inst->inst.id,
                     static_cast<unsigned long long>(
                         stats_.dynamicInsts));
        }
        timeInst(info, inst_seq);
        ++inst_seq;

        // Deterministic fault-injection sites, gated so an armed
        // injector costs one relaxed load per commit and a draw only
        // every 4096 insts (keyed by inst_seq, so the faulting point
        // is reproducible at any worker count).
        if (faultinject::armed() && (inst_seq & 4095) == 0) {
            faultinject::site("pipeline.cycle", SimError::Kind::Hang);
            faultinject::site("pipeline.commit",
                              SimError::Kind::Fault);
        }

        // Forward-progress watchdogs: a runaway program (cycle budget)
        // or a timing-model bug that stops retiring work (progress
        // window) surfaces as a structured Hang instead of wedging the
        // experiment pool.
        if (opts_.cycleBudget != 0 && max_done_ > opts_.cycleBudget) {
            vg_throw(Hang,
                     "cycle budget exceeded: %llu cycles > budget %llu "
                     "after %llu retired insts (pc 0x%llx)",
                     static_cast<unsigned long long>(max_done_),
                     static_cast<unsigned long long>(opts_.cycleBudget),
                     static_cast<unsigned long long>(
                         stats_.dynamicInsts),
                     static_cast<unsigned long long>(info.inst->pc));
        }
        if (opts_.progressWindow != 0 &&
            max_done_ - last_commit_cycle > opts_.progressWindow) {
            vg_throw(Hang,
                     "no retired-instruction progress: clock advanced "
                     "%llu cycles across one commit (window %llu, pc "
                     "0x%llx)",
                     static_cast<unsigned long long>(
                         max_done_ - last_commit_cycle),
                     static_cast<unsigned long long>(
                         opts_.progressWindow),
                     static_cast<unsigned long long>(info.inst->pc));
        }
        last_commit_cycle = max_done_;

        if (stats_.halted)
            break;
    }
    if (opts_.lockstep != nullptr && stats_.halted)
        opts_.lockstep->onHalt(exec_.regs());
    stats_.cycles = max_done_ + 1;

    // One pass builds the per-branch map callers expect; sized to the
    // touched-entry count so it never rehashes.
    if (opts_.collectBranchStalls) {
        size_t touched = 0;
        for (uint64_t events : stall_events_by_id_)
            touched += events != 0;
        stats_.branchStalls.reserve(touched);
        for (InstId id = 0; id < stall_events_by_id_.size(); ++id) {
            if (stall_events_by_id_[id] != 0) {
                stats_.branchStalls.emplace(
                    id, std::make_pair(stall_cycles_by_id_[id],
                                       stall_events_by_id_[id]));
            }
        }
    }

    // Export the predictor's internal counters under a sanitized
    // "bpred.<name>." prefix so they ride along with the run's stats
    // (and survive journal round-trips like every other counter).
    {
        MetricSnapshot snap;
        predictor_.exportMetrics(
            snap, "bpred." + sanitizeMetricKey(predictor_.name()) + ".");
        stats_.bpredCounters.reserve(snap.entries.size());
        for (const auto &e : snap.entries)
            stats_.bpredCounters.emplace_back(e.path, e.value);
    }
    return stats_;
}

} // namespace

SimStats
simulate(const Program &prog, Memory &mem,
         DirectionPredictor &predictor, const MachineConfig &cfg,
         const SimOptions &opts)
{
    TimingModel model(prog, mem, predictor, cfg, opts);
    return model.run();
}

MetricSnapshot
simStatsSnapshot(const SimStats &stats)
{
    MetricSnapshot snap;
    snap.add("uarch.pipeline.cycles", stats.cycles);
    snap.add("uarch.pipeline.dynamicInsts", stats.dynamicInsts);
    snap.add("uarch.pipeline.fetched", stats.fetched);
    snap.add("uarch.pipeline.issued", stats.issued);
    snap.add("uarch.pipeline.condBranches", stats.condBranches);
    snap.add("uarch.pipeline.brMispredicts", stats.brMispredicts);
    snap.add("uarch.pipeline.predictsExecuted", stats.predictsExecuted);
    snap.add("uarch.pipeline.resolvesExecuted", stats.resolvesExecuted);
    snap.add("uarch.pipeline.resolveRedirects", stats.resolveRedirects);
    snap.add("uarch.pipeline.branchStallCycles",
             stats.branchStallCycles);
    snap.add("uarch.pipeline.branchStallEvents",
             stats.branchStallEvents);
    snap.add("uarch.pipeline.fetchBufferStalls",
             stats.fetchBufferStalls);
    snap.add("uarch.pipeline.speculativeExecs", stats.speculativeExecs);
    snap.add("uarch.pipeline.foldedCommitMovs", stats.foldedCommitMovs);
    snap.add("uarch.icache.lineAccesses", stats.icacheLineAccesses);
    snap.add("uarch.icache.misses", stats.icacheMisses);
    snap.add("uarch.l1d.accesses", stats.l1dAccesses);
    snap.add("uarch.l1d.misses", stats.l1dMisses);
    snap.add("uarch.l2.misses", stats.l2Misses);
    snap.add("uarch.l3.misses", stats.l3Misses);
    snap.add("uarch.dbb.fullStalls", stats.dbbFullStalls);
    snap.add("uarch.dbb.maxOccupancy", stats.dbbMaxOccupancy,
             MetricSnapshot::Agg::Max);
    snap.add("uarch.mshr.stalls", stats.mshrStalls);
    for (const auto &kv : stats.bpredCounters)
        snap.add(kv.first, kv.second);
    return snap;
}

std::vector<bool>
prerecordPredictOutcomes(const Program &prog, const Memory &mem,
                         uint64_t max_insts)
{
    Memory scratch = mem; // functional pre-pass must not disturb state
    ProgramExecutor exec(prog, scratch);
    std::vector<bool> outcomes;
    outcomes.reserve(4096); // grows by doubling; skip the small steps

    exec.setPredictHook([&](const LaidInst &) {
        outcomes.push_back(false); // placeholder; filled at RESOLVE
        return false;
    });

    std::deque<size_t> pending;
    uint64_t steps = 0;
    size_t predict_count = 0;
    while (!exec.halted() && steps < max_insts) {
        auto info = exec.step();
        if (info.inst == nullptr)
            break;
        ++steps;
        if (info.inst->inst.op == Opcode::PREDICT) {
            pending.push_back(predict_count++);
        } else if (info.inst->inst.op == Opcode::RESOLVE) {
            vg_assert(!pending.empty(),
                      "RESOLVE without outstanding PREDICT");
            bool outcome = info.taken
                ? !info.inst->inst.resolvePathTaken
                : info.inst->inst.resolvePathTaken;
            outcomes[pending.front()] = outcome;
            pending.pop_front();
        }
    }
    return outcomes;
}

} // namespace vanguard
