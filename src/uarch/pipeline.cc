#include "uarch/pipeline.hh"

#include <cstdlib>
#include <cstring>
#include <memory>

/*
 * Compile-time availability of the computed-goto (threaded-code)
 * dispatcher for the fast path. GCC/Clang builds default to on; the
 * CMake option VANGUARD_THREADED=OFF defines it to 0 and any other
 * compiler falls back to the portable switch. Runtime opt-out (the
 * SimOptions::noThreadedDispatch flag or VANGUARD_THREADED=0 in the
 * environment) selects the switch dispatcher inside a threaded build
 * without recompiling.
 */
#ifndef VANGUARD_THREADED_DISPATCH
#if defined(__GNUC__) || defined(__clang__)
#define VANGUARD_THREADED_DISPATCH 1
#else
#define VANGUARD_THREADED_DISPATCH 0
#endif
#endif

#include "bpred/btb.hh"
#include "bpred/dispatch.hh"
#include "exec/decoded_program.hh"
#include "support/fault_inject.hh"
#include "support/logging.hh"
#include "support/ring.hh"

/*
 * The fused step functions are large enough (every handler plus the
 * replicated threaded-dispatch tails) that GCC's unit-growth budget
 * stops inlining the per-instruction timing helpers into them,
 * leaving a real call (spills included) per retired instruction.
 * Force the verdict for the helpers that run on every instruction;
 * they are small, single-caller-shaped, and loop-free.
 */
#if defined(__GNUC__) || defined(__clang__)
#define VG_HOT_INLINE inline __attribute__((always_inline))
#else
#define VG_HOT_INLINE inline
#endif

namespace vanguard {

namespace {

/**
 * Largest stall-accounting key any BR/RESOLVE in prog reports (BR ->
 * its own id, RESOLVE -> origBranch), or kNoInst when there is none.
 * Sizes the dense per-branch stall accumulators; both execution paths
 * must size them identically for bit-identical SimStats.
 */
InstId
stallKeyBound(const Program &prog)
{
    InstId max_id = kNoInst;
    for (size_t i = 0; i < prog.size(); ++i) {
        const Instruction &inst = prog.at(i).inst;
        InstId key = kNoInst;
        if (inst.op == Opcode::BR)
            key = inst.id;
        else if (inst.op == Opcode::RESOLVE)
            key = inst.origBranch;
        if (key != kNoInst && (max_id == kNoInst || key > max_id))
            max_id = key;
    }
    return max_id;
}

/**
 * Cycle-accounting machinery shared by both execution paths: machine
 * state (caches, BTB, DBB), fetch/issue bookkeeping, and the
 * allocation-free queues of the cycle loop. The two subclasses differ
 * only in how the committed instruction stream is produced —
 * ReferenceModel interprets Instruction records through a
 * ProgramExecutor with std::function hooks (the retained pre-decode
 * baseline), FastModel runs a fused decode/execute/time loop over a
 * DecodedProgram — so every cycle-level decision lives here exactly
 * once and bit-identity between the paths holds by construction.
 *
 * Queue bounds (all derived from MachineConfig, so the cycle loop
 * never touches the heap):
 *  - dbb_free_cycles_ <= 2*dbbEntries - 1: a PREDICT drains it below
 *    dbbEntries before inserting, and at most dbbEntries RESOLVEs (the
 *    DBB's own capacity, asserted by its CircularBuffer) can push
 *    before the next PREDICT;
 *  - outstanding_misses_ <= mshrEntries: the MSHR loop pops below
 *    capacity before any insert. Only the minimum completion cycle is
 *    ever observed, so a flat min-heap is element-for-element
 *    equivalent to the std::multiset it replaces.
 */
class TimingCommon
{
  protected:
    TimingCommon(DirectionPredictor &predictor, const MachineConfig &cfg,
                 const SimOptions &opts, InstId stall_key_bound)
        : predictor_(predictor), cfg_(cfg), opts_(opts), hier_(cfg),
          btb_(cfg.btbIndexBits), dbb_(cfg.dbbEntries),
          fetch_ring_(cfg.fetchBufferEntries, 0),
          outstanding_misses_(cfg.mshrEntries),
          dbb_free_cycles_(2 * size_t{cfg.dbbEntries}),
          line_mask_(~uint64_t{cfg.l1i.lineBytes - 1}),
          fetch_slot_mask_(
              (cfg.fetchBufferEntries &
               (cfg.fetchBufferEntries - 1)) == 0
                  ? cfg.fetchBufferEntries - 1
                  : 0),
          width_(cfg.width), frontend_stages_(cfg.frontendStages),
          fetch_buffer_entries_(cfg.fetchBufferEntries),
          dbb_entries_(cfg.dbbEntries), mshr_entries_(cfg.mshrEntries),
          mem_ports_(cfg.memPorts), int_ports_(cfg.intPorts),
          fp_ports_(cfg.fpPorts), shadow_commit_(cfg.shadowCommit)
    {
        // Dense per-branch stall accumulators, sized once up front so
        // the hot loop never touches the hash map (and does nothing at
        // all when collection is off). Sized by the largest id a
        // BR/RESOLVE can report, not by program length.
        if (opts_.collectBranchStalls && stall_key_bound != kNoInst) {
            stall_cycles_by_id_.assign(stall_key_bound + 1, 0);
            stall_events_by_id_.assign(stall_key_bound + 1, 0);
        }
    }

    // --- fetch-side helpers -------------------------------------------

    /** Fetch one instruction; returns its fetch cycle. `line` is the
     *  instruction's I-cache line tag (pc masked with line_mask_). */
    uint64_t
    fetchInst(uint64_t line, uint64_t inst_seq)
    {
        uint64_t f = next_fetch_cycle_;

        // Fetch buffer back-pressure: slot of inst (seq - N) must have
        // drained.
        size_t n = fetch_buffer_entries_;
        if (inst_seq >= n) {
            uint64_t freed = fetch_ring_[fetchSlot(inst_seq)];
            if (freed > f) {
                f = freed;
                ++stats_.fetchBufferStalls;
            }
        }

        // I-cache: access on each new line.
        if (line != cur_fetch_line_) {
            ++stats_.icacheLineAccesses;
            unsigned extra = hier_.instAccess(line);
            if (extra > 0) {
                ++stats_.icacheMisses;
                f += extra;
            }
            cur_fetch_line_ = line;
        }

        // Bandwidth: width insts per cycle.
        if (f > cur_fetch_cycle_) {
            cur_fetch_cycle_ = f;
            fetched_in_cycle_ = 0;
        }
        if (fetched_in_cycle_ >= width_) {
            ++cur_fetch_cycle_;
            fetched_in_cycle_ = 0;
        }
        f = cur_fetch_cycle_;
        ++fetched_in_cycle_;
        ++stats_.fetched;
        next_fetch_cycle_ = cur_fetch_cycle_;
        return f;
    }

    /** Fetch-ring slot of inst_seq; mask when the buffer is a power of
     *  two (the common 32-entry case), avoiding a division per inst. */
    VG_HOT_INLINE size_t
    fetchSlot(uint64_t inst_seq) const
    {
        return fetch_slot_mask_ != 0
            ? (inst_seq & fetch_slot_mask_)
            : (inst_seq % fetch_buffer_entries_);
    }

    /** Record when an instruction leaves the fetch buffer. */
    VG_HOT_INLINE void
    recordDrain(uint64_t inst_seq, uint64_t leave_cycle)
    {
        fetch_ring_[fetchSlot(inst_seq)] = leave_cycle;
    }

    /** Steer fetch for a taken (correctly-predicted) control transfer. */
    void
    takenRedirect(uint64_t pc, uint64_t target, uint64_t fetch_cycle,
                  uint64_t decode_cycle)
    {
        uint64_t btb_target = 0;
        bool hit = btb_.lookup(pc, btb_target) && btb_target == target;
        next_fetch_cycle_ =
            std::max(next_fetch_cycle_,
                     hit ? fetch_cycle + 1 : decode_cycle + 1);
        btb_.insert(pc, target);
        cur_fetch_line_ = ~uint64_t{0};
    }

    /** Squash-and-redirect after a mispredict resolves at `done`. */
    void
    mispredictRedirect(uint64_t done)
    {
        next_fetch_cycle_ = std::max(next_fetch_cycle_, done);
        cur_fetch_line_ = ~uint64_t{0};
    }

    /**
     * DBB insert at decode; stalls the front end while the buffer is
     * full. Returns the (possibly delayed) decode cycle at which the
     * PREDICT actually drains.
     */
    uint64_t
    dbbAdmit(uint64_t decode)
    {
        while (!dbb_free_cycles_.empty() &&
               dbb_free_cycles_.front() <= decode) {
            dbb_free_cycles_.pop_front();
        }
        while (dbb_free_cycles_.size() >= dbb_entries_) {
            ++stats_.dbbFullStalls;
            decode = std::max(decode, dbb_free_cycles_.front() + 1);
            dbb_free_cycles_.pop_front();
            next_fetch_cycle_ = std::max(next_fetch_cycle_, decode - 1);
        }
        stats_.dbbMaxOccupancy =
            std::max<uint64_t>(stats_.dbbMaxOccupancy,
                               dbb_free_cycles_.size() + 1);
        return decode;
    }

    // --- issue-side helpers -------------------------------------------

    VG_HOT_INLINE unsigned
    portCap(FuClass cls) const
    {
        switch (cls) {
          case FuClass::Mem:
            return mem_ports_;
          case FuClass::IntAlu:
            return int_ports_;
          case FuClass::Fp:
            return fp_ports_;
          case FuClass::None:
            return width_;
        }
        return width_;
    }

    /** In-order issue: find the first cycle >= earliest with a free
     *  slot and FU port, and claim them. */
    uint64_t
    computeIssue(uint64_t earliest, FuClass cls)
    {
        uint64_t c = std::max(earliest, prev_issue_cycle_);
        for (;;) {
            if (c > cur_issue_cycle_) {
                cur_issue_cycle_ = c;
                slots_used_ = 0;
                std::memset(ports_used_, 0, sizeof(ports_used_));
            }
            unsigned cls_idx = static_cast<unsigned>(cls);
            if (slots_used_ < width_ &&
                ports_used_[cls_idx] < portCap(cls)) {
                ++slots_used_;
                ++ports_used_[cls_idx];
                prev_issue_cycle_ = c;
                return c;
            }
            ++c;
        }
    }

    VG_HOT_INLINE uint64_t
    srcReady(RegId src1, RegId src2, RegId src3) const
    {
        uint64_t ready = 0;
        if (src1 != kNoReg)
            ready = reg_ready_[src1];
        if (src2 != kNoReg && reg_ready_[src2] > ready)
            ready = reg_ready_[src2];
        if (src3 != kNoReg && reg_ready_[src3] > ready)
            ready = reg_ready_[src3];
        return ready;
    }

    /**
     * Branch-resolution stall accounting (the paper's ASPCB): cycles
     * between the branch reaching the issue stage and actually
     * issuing — queueing behind older in-flight work plus waiting for
     * its own condition operands. `key` is the branch's accumulator
     * index (BR -> id, RESOLVE -> origBranch).
     */
    void
    noteBranchStall(InstId key, uint64_t issue, uint64_t enter_issue)
    {
        uint64_t stall = issue - enter_issue;
        stats_.branchStallCycles += stall;
        ++stats_.branchStallEvents;
        if (opts_.collectBranchStalls &&
            key < stall_cycles_by_id_.size()) {
            stall_cycles_by_id_[key] += stall;
            ++stall_events_by_id_[key];
        }
    }

    /** MSHR occupancy gating for a load entering issue. */
    uint64_t
    mshrAdmit(uint64_t earliest)
    {
        while (!outstanding_misses_.empty() &&
               outstanding_misses_.min() <= earliest) {
            outstanding_misses_.pop_min();
        }
        while (outstanding_misses_.size() >= mshr_entries_) {
            ++stats_.mshrStalls;
            earliest = std::max(earliest, outstanding_misses_.min());
            outstanding_misses_.pop_min();
        }
        return earliest;
    }

    /** Charge one data-side hierarchy access and count per-level. */
    MemAccessResult
    dataAccess(uint64_t addr)
    {
        MemAccessResult res = hier_.dataAccess(addr);
        ++stats_.l1dAccesses;
        if (res.level >= 2)
            ++stats_.l1dMisses;
        if (res.level >= 3)
            ++stats_.l2Misses;
        if (res.level >= 4)
            ++stats_.l3Misses;
        return res;
    }

    void
    traceRecord(uint64_t pc, Opcode op, uint64_t fetch, uint64_t issue,
                uint64_t done, bool issued, bool redirected)
    {
        if (opts_.trace != nullptr) {
            // Unconditional: the window itself counts overflow so the
            // Gantt footer can report how much it dropped.
            opts_.trace->record(
                {pc, op, fetch, issue, done, issued, redirected});
        }
    }

    // --- end-of-run reporting -----------------------------------------

    void
    finalizeStats()
    {
        stats_.cycles = max_done_ + 1;

        // One pass builds the per-branch map callers expect; sized to
        // the touched-entry count so it never rehashes.
        if (opts_.collectBranchStalls) {
            size_t touched = 0;
            for (uint64_t events : stall_events_by_id_)
                touched += events != 0;
            stats_.branchStalls.reserve(touched);
            for (InstId id = 0; id < stall_events_by_id_.size(); ++id) {
                if (stall_events_by_id_[id] != 0) {
                    stats_.branchStalls.emplace(
                        id, std::make_pair(stall_cycles_by_id_[id],
                                           stall_events_by_id_[id]));
                }
            }
        }

        // Export the predictor's internal counters under a sanitized
        // "bpred.<name>." prefix so they ride along with the run's
        // stats (and survive journal round-trips like every other
        // counter).
        MetricSnapshot snap;
        predictor_.exportMetrics(
            snap, "bpred." + sanitizeMetricKey(predictor_.name()) + ".");
        stats_.bpredCounters.reserve(snap.entries.size());
        for (const auto &e : snap.entries)
            stats_.bpredCounters.emplace_back(e.path, e.value);
    }

    DirectionPredictor &predictor_;
    const MachineConfig &cfg_;
    const SimOptions &opts_;

    MemoryHierarchy hier_;
    BranchTargetBuffer btb_;
    DecomposedBranchBuffer dbb_;
    SimStats stats_;

    // fetch state
    uint64_t next_fetch_cycle_ = 0;
    uint64_t cur_fetch_cycle_ = 0;
    unsigned fetched_in_cycle_ = 0;
    uint64_t cur_fetch_line_ = ~uint64_t{0};
    std::vector<uint64_t> fetch_ring_;

    // issue state
    uint64_t prev_issue_cycle_ = 0;
    uint64_t cur_issue_cycle_ = 0;
    unsigned slots_used_ = 0;
    unsigned ports_used_[4] = {};
    uint64_t reg_ready_[kNumRegs] = {};

    // memory-system state: completion cycles of in-flight misses.
    BoundedMinHeap outstanding_misses_;

    // DBB timing state: free cycles of inserted entries, FIFO order.
    RingFifo<uint64_t> dbb_free_cycles_;

    // Per-branch stall accumulators (only sized when
    // opts.collectBranchStalls); densified into stats_.branchStalls
    // once at the end of run().
    std::vector<uint64_t> stall_cycles_by_id_;
    std::vector<uint64_t> stall_events_by_id_;

    /** Config-derived I-line mask, computed once (not per fetch). */
    const uint64_t line_mask_;

    /** fetchBufferEntries-1 when a power of two, else 0 (division
     *  fallback in fetchSlot). */
    const uint64_t fetch_slot_mask_;

    // Hot MachineConfig fields copied by value: reads through the
    // cfg_ reference cannot be hoisted by the compiler past the
    // model's own stores (potential aliasing), so the cycle loop would
    // reload them every instruction.
    const unsigned width_;
    const unsigned frontend_stages_;
    const unsigned fetch_buffer_entries_;
    const unsigned dbb_entries_;
    const unsigned mshr_entries_;
    const unsigned mem_ports_;
    const unsigned int_ports_;
    const unsigned fp_ports_;
    const bool shadow_commit_;

    uint64_t predict_seq_ = 0;
    DbbEntry pending_predict_;
    uint64_t max_done_ = 0;
};

/**
 * The retained reference path: a ProgramExecutor interprets
 * Instruction records and drives the timing model through StepInfo,
 * with std::function predict/store hooks and virtual predictor
 * dispatch — the pre-decode execution model this PR's fast path is
 * benchmarked against and held bit-identical to. Runs that need the
 * executor's taps (lockstep oracle, pipeline trace) always take this
 * path.
 */
class ReferenceModel : public TimingCommon
{
  public:
    ReferenceModel(const Program &prog, Memory &mem,
                   DirectionPredictor &predictor,
                   const MachineConfig &cfg, const SimOptions &opts)
        : TimingCommon(predictor, cfg, opts, stallKeyBound(prog)),
          prog_(prog), exec_(prog, mem)
    {
        exec_.setPredictHook([this](const LaidInst &li) {
            return onPredictFetch(li);
        });
        if (opts_.lockstep != nullptr) {
            exec_.setStoreHook([this](uint64_t addr, int64_t value) {
                opts_.lockstep->onStore(addr, value);
            });
        }
    }

    SimStats run();

  private:
    /** Predict hook: called by the executor when a PREDICT is reached;
     *  the returned direction is the architectural path. */
    bool
    onPredictFetch(const LaidInst &li)
    {
        PredMeta meta;
        bool dir;
        if (opts_.predictOutcomes != nullptr) {
            vg_assert(predict_seq_ < opts_.predictOutcomes->size(),
                      "prerecorded predict outcomes exhausted");
            dir = predictor_.predictWithOracle(
                li.pc, (*opts_.predictOutcomes)[predict_seq_], meta);
        } else {
            dir = predictor_.predict(li.pc, meta);
        }
        ++predict_seq_;
        pending_predict_ = {li.pc, meta, dir, true};
        return dir;
    }

    void timeInst(const ProgramExecutor::StepInfo &info,
                  uint64_t inst_seq);

    const Program &prog_;
    ProgramExecutor exec_;
};

void
ReferenceModel::timeInst(const ProgramExecutor::StepInfo &info,
                         uint64_t inst_seq)
{
    const LaidInst &li = *info.inst;
    const Instruction &inst = li.inst;

    uint64_t f = fetchInst(li.pc & line_mask_, inst_seq);
    uint64_t decode = f + 1;
    uint64_t enter_issue = f + frontend_stages_ - 1;
    max_done_ = std::max(max_done_, enter_issue);

    switch (inst.op) {
      case Opcode::HALT:
        recordDrain(inst_seq, decode);
        traceRecord(li.pc, inst.op, f, decode, decode, false, false);
        stats_.halted = true;
        return;

      case Opcode::JMP:
        // Direct jumps are handled in the front end; no issue slot.
        recordDrain(inst_seq, decode);
        takenRedirect(li.pc, li.takenPc, f, decode);
        traceRecord(li.pc, inst.op, f, decode, decode, false, false);
        return;

      case Opcode::PREDICT: {
        ++stats_.predictsExecuted;
        decode = dbbAdmit(decode);
        dbb_.insert(pending_predict_.predictPc, pending_predict_.meta,
                    pending_predict_.predictedTaken);
        recordDrain(inst_seq, decode); // dropped after decode
        if (info.taken)
            takenRedirect(li.pc, li.takenPc, f, decode);
        traceRecord(li.pc, inst.op, f, decode, decode, false, false);
        return;
      }

      case Opcode::BR: {
        ++stats_.condBranches;
        PredMeta meta;
        bool pred =
            predictor_.predictWithOracle(li.pc, info.taken, meta);
        predictor_.updateHistory(info.taken);
        predictor_.update(li.pc, info.taken, meta);

        uint64_t earliest =
            std::max(enter_issue,
                     srcReady(inst.src1, inst.src2, inst.src3));
        uint64_t issue = computeIssue(earliest, FuClass::IntAlu);
        uint64_t done = issue + 1;
        max_done_ = std::max(max_done_, done);
        ++stats_.issued;
        recordDrain(inst_seq, issue);
        noteBranchStall(inst.id, issue, enter_issue);

        bool mispredicted = pred != info.taken;
        if (mispredicted) {
            ++stats_.brMispredicts;
            mispredictRedirect(done);
            if (info.taken)
                btb_.insert(li.pc, li.takenPc);
        } else if (info.taken) {
            takenRedirect(li.pc, li.takenPc, f, decode);
        }
        traceRecord(li.pc, inst.op, f, issue, done, true, mispredicted);
        return;
      }

      case Opcode::RESOLVE: {
        ++stats_.resolvesExecuted;
        // Associate with the oldest outstanding PREDICT (paper: the
        // tail-pointer index captured at decode) and train through it.
        DbbEntry entry = dbb_.resolveOldest();
        bool outcome = info.taken ? !inst.resolvePathTaken
                                  : inst.resolvePathTaken;
        if (entry.valid) {
            predictor_.updateHistory(outcome);
            predictor_.update(entry.predictPc, outcome, entry.meta);
        }

        uint64_t earliest =
            std::max(enter_issue,
                     srcReady(inst.src1, inst.src2, inst.src3));
        uint64_t issue = computeIssue(earliest, FuClass::IntAlu);
        uint64_t done = issue + 1;
        max_done_ = std::max(max_done_, done);
        ++stats_.issued;
        recordDrain(inst_seq, issue);
        noteBranchStall(inst.origBranch, issue, enter_issue);
        dbb_free_cycles_.push_back(done);

        if (info.taken) {
            // The PREDICT was wrong: redirect to correction code.
            ++stats_.resolveRedirects;
            mispredictRedirect(done);
        }
        traceRecord(li.pc, inst.op, f, issue, done, true, info.taken);
        return;
      }

      default:
        break;
    }

    // Shadow-commit folding: temp->arch MOVs become rename updates.
    if (shadow_commit_ && inst.op == Opcode::MOV &&
        isTempReg(inst.src1) && isArchReg(inst.dst)) {
        reg_ready_[inst.dst] = reg_ready_[inst.src1];
        ++stats_.foldedCommitMovs;
        recordDrain(inst_seq, decode);
        traceRecord(li.pc, inst.op, f, decode, decode, false, false);
        return;
    }

    if (opts_.hoistedMask != nullptr && inst.id != kNoInst &&
        inst.id < opts_.hoistedMask->size() &&
        (*opts_.hoistedMask)[inst.id]) {
        ++stats_.speculativeExecs;
    }

    uint64_t earliest =
        std::max(enter_issue,
                 srcReady(inst.src1, inst.src2, inst.src3));
    FuClass cls = inst.fuClass();
    uint64_t done;

    if (inst.isLoad()) {
        earliest = mshrAdmit(earliest);
        uint64_t issue = computeIssue(earliest, cls);
        MemAccessResult res = dataAccess(info.memAddr);
        done = issue + res.latency;
        if (res.level >= 2)
            outstanding_misses_.push(done);
        reg_ready_[inst.dst] = done;
        recordDrain(inst_seq, issue);
    } else if (inst.isStore()) {
        uint64_t issue = computeIssue(earliest, cls);
        dataAccess(info.memAddr);
        // Stores retire through the store buffer; 1 cycle to the
        // pipeline.
        done = issue + 1;
        recordDrain(inst_seq, issue);
    } else {
        uint64_t issue = computeIssue(earliest, cls);
        done = issue + inst.latency();
        if (inst.writesDst())
            reg_ready_[inst.dst] = done;
        recordDrain(inst_seq, issue);
    }
    ++stats_.issued;
    max_done_ = std::max(max_done_, done);
    traceRecord(li.pc, inst.op, f, prev_issue_cycle_, done, true, false);
}

SimStats
ReferenceModel::run()
{
    uint64_t inst_seq = 0;
    uint64_t last_commit_cycle = 0;
    while (!exec_.halted() && stats_.dynamicInsts < opts_.maxInsts) {
        auto info = exec_.step();
        if (info.inst == nullptr)
            break;
        ++stats_.dynamicInsts;
        if (info.fault) {
            stats_.faulted = true;
            vg_throw(Fault,
                     "simulated program faulted at pc 0x%llx (inst %u, "
                     "%llu insts retired)",
                     static_cast<unsigned long long>(info.inst->pc),
                     info.inst->inst.id,
                     static_cast<unsigned long long>(
                         stats_.dynamicInsts));
        }
        timeInst(info, inst_seq);
        ++inst_seq;

        // Deterministic fault-injection sites, gated so an armed
        // injector costs one relaxed load per commit and a draw only
        // every 4096 insts (keyed by inst_seq, so the faulting point
        // is reproducible at any worker count).
        if (faultinject::armed() && (inst_seq & 4095) == 0) {
            faultinject::site("pipeline.cycle", SimError::Kind::Hang);
            faultinject::site("pipeline.commit",
                              SimError::Kind::Fault);
        }

        // Forward-progress watchdogs: a runaway program (cycle budget)
        // or a timing-model bug that stops retiring work (progress
        // window) surfaces as a structured Hang instead of wedging the
        // experiment pool.
        if (opts_.cycleBudget != 0 && max_done_ > opts_.cycleBudget) {
            vg_throw(Hang,
                     "cycle budget exceeded: %llu cycles > budget %llu "
                     "after %llu retired insts (pc 0x%llx)",
                     static_cast<unsigned long long>(max_done_),
                     static_cast<unsigned long long>(opts_.cycleBudget),
                     static_cast<unsigned long long>(
                         stats_.dynamicInsts),
                     static_cast<unsigned long long>(info.inst->pc));
        }
        if (opts_.progressWindow != 0 &&
            max_done_ - last_commit_cycle > opts_.progressWindow) {
            vg_throw(Hang,
                     "no retired-instruction progress: clock advanced "
                     "%llu cycles across one commit (window %llu, pc "
                     "0x%llx)",
                     static_cast<unsigned long long>(
                         max_done_ - last_commit_cycle),
                     static_cast<unsigned long long>(
                         opts_.progressWindow),
                     static_cast<unsigned long long>(info.inst->pc));
        }
        last_commit_cycle = max_done_;

        if (stats_.halted)
            break;
    }
    if (opts_.lockstep != nullptr && stats_.halted)
        opts_.lockstep->onHalt(exec_.regs());
    finalizeStats();
    return stats_;
}

/**
 * True when VANGUARD_THREADED in the environment asks for the switch
 * dispatcher ("0", "OFF", or "off"); mirrors the spelling of CMake's
 * VANGUARD_THREADED option so one name controls both build and run.
 */
bool
threadedDisabledByEnv()
{
    const char *env = std::getenv("VANGUARD_THREADED");
    if (env == nullptr)
        return false;
    return env[0] == '0' || std::strcmp(env, "OFF") == 0 ||
           std::strcmp(env, "off") == 0;
}

/**
 * The fast path: a fused decode/execute/time loop over a
 * DecodedProgram. Architectural state (registers, memory) is advanced
 * inline by a single switch that replicates exec/semantics.cc exactly
 * — including the DIV wrap/fault, LD_S zero-fill, and shift-mask edge
 * cases — and every cycle-accounting decision goes through the same
 * TimingCommon helpers as the reference path. Predictor calls go
 * through the sealed PredictorDispatch (direct, inlineable calls for
 * every factory predictor) in the same per-instruction order the
 * reference path makes them, so predictions, history, and telemetry
 * counters are bit-identical.
 */
class FastModel : public TimingCommon
{
  public:
    FastModel(const DecodedProgram &decoded, Memory &mem,
              DirectionPredictor &predictor, const MachineConfig &cfg,
              const SimOptions &opts)
        : TimingCommon(predictor, cfg, opts, decoded.maxStallKey()),
          code_(decoded.insts()), code_size_(decoded.size()),
          mem_(mem), pdx_(predictor),
          use_line_tags_(decoded.lineBytes() == cfg.l1i.lineBytes),
          use_threaded_(VANGUARD_THREADED_DISPATCH != 0 &&
                        !opts.noThreadedDispatch &&
                        !threadedDisabledByEnv())
    {
        // Expand the per-InstId hoisted mask to a per-instruction-index
        // byte array: the id -> bit lookup is static, so hoisting it
        // out of the cycle loop cannot change what is counted. Always
        // sized so the hot loop indexes unconditionally.
        hoisted_.assign(code_size_, 0);
        if (opts_.hoistedMask != nullptr) {
            const std::vector<bool> &mask = *opts_.hoistedMask;
            for (size_t i = 0; i < code_size_; ++i) {
                InstId id = code_[i].id;
                if (id != kNoInst && id < mask.size() && mask[id])
                    hoisted_[i] = 1;
            }
        }
    }

    /**
     * Advance up to max_steps more committed instructions (also
     * bounded by opts.maxInsts). The chunk bound merges into the
     * loop's existing `dynamicInsts < limit` condition and all
     * loop-carried state lives in members, so N resume() calls retire
     * exactly the instruction sequence one run() would — chunked
     * stepping is bit-identical by construction, which is what lets
     * simulateBatch() interleave lanes.
     */
    void
    resume(uint64_t max_steps)
    {
        if (done_)
            return;
        uint64_t limit = opts_.maxInsts;
        uint64_t remaining = limit - stats_.dynamicInsts;
        if (max_steps < remaining)
            limit = stats_.dynamicInsts + max_steps;
#if VANGUARD_THREADED_DISPATCH
        if (use_threaded_)
            stepThreaded(limit);
        else
            stepSwitch(limit);
#else
        stepSwitch(limit);
#endif
        done_ = stats_.halted || stats_.dynamicInsts >= opts_.maxInsts;
    }

    bool finished() const { return done_; }

    /** Densify and export final stats; call once, after finished(). */
    SimStats
    takeStats()
    {
        finalizeStats();
        return stats_;
    }

    SimStats
    run()
    {
        resume(~uint64_t{0});
        return takeStats();
    }

  private:
    void stepSwitch(uint64_t limit);
#if VANGUARD_THREADED_DISPATCH
    void stepThreaded(uint64_t limit);
#endif

    [[noreturn]] void
    budgetThrow(uint64_t pc)
    {
        vg_throw(Hang,
                 "cycle budget exceeded: %llu cycles > budget %llu "
                 "after %llu retired insts (pc 0x%llx)",
                 static_cast<unsigned long long>(max_done_),
                 static_cast<unsigned long long>(opts_.cycleBudget),
                 static_cast<unsigned long long>(stats_.dynamicInsts),
                 static_cast<unsigned long long>(pc));
    }

    [[noreturn]] void
    progressThrow(uint64_t pc, uint64_t last_commit)
    {
        vg_throw(Hang,
                 "no retired-instruction progress: clock advanced "
                 "%llu cycles across one commit (window %llu, pc "
                 "0x%llx)",
                 static_cast<unsigned long long>(max_done_ - last_commit),
                 static_cast<unsigned long long>(opts_.progressWindow),
                 static_cast<unsigned long long>(pc));
    }

    [[noreturn]] void
    badOpcodeThrow(Opcode op, uint64_t pc, size_t idx)
    {
        vg_throw(Invariant,
                 "evaluate: bad opcode %u at pc 0x%llx (idx %zu)",
                 static_cast<unsigned>(op),
                 static_cast<unsigned long long>(pc), idx);
    }
    VG_HOT_INLINE int64_t
    src2Value(const DecodedInst &d) const
    {
        return d.hasImmSrc2() ? d.imm : regs_[d.src2];
    }

    [[noreturn]] void
    faultThrow(const DecodedInst &d)
    {
        stats_.faulted = true;
        vg_throw(Fault,
                 "simulated program faulted at pc 0x%llx (inst %u, "
                 "%llu insts retired)",
                 static_cast<unsigned long long>(d.pc), d.id,
                 static_cast<unsigned long long>(stats_.dynamicInsts));
    }

    bool
    predictLookup(uint64_t pc)
    {
        // Fill pending_predict_ in place (one fresh-meta write instead
        // of a fresh local plus an 80-byte struct copy per PREDICT).
        pending_predict_.meta = PredMeta{};
        bool dir;
        if (opts_.predictOutcomes != nullptr) {
            vg_assert(predict_seq_ < opts_.predictOutcomes->size(),
                      "prerecorded predict outcomes exhausted");
            dir = pdx_.predictWithOracle(
                pc, (*opts_.predictOutcomes)[predict_seq_],
                pending_predict_.meta);
        } else {
            dir = pdx_.predict(pc, pending_predict_.meta);
        }
        ++predict_seq_;
        pending_predict_.predictPc = pc;
        pending_predict_.predictedTaken = dir;
        pending_predict_.valid = true;
        return dir;
    }

    const DecodedInst *code_;
    size_t code_size_;
    Memory &mem_;
    PredictorDispatch pdx_;
    int64_t regs_[kNumRegs] = {};
    std::vector<uint8_t> hoisted_;  ///< by instruction index
    const bool use_line_tags_;
    const bool use_threaded_;

    // Loop-carried state, saved across resume() chunk boundaries.
    size_t idx_ = 0;
    uint64_t inst_seq_ = 0;
    uint64_t last_commit_cycle_ = 0;
    bool done_ = false;
};

void
FastModel::stepSwitch(uint64_t limit)
{
#define VG_THREADED 0
#include "uarch/fast_loop.inc"
#undef VG_THREADED
}

#if VANGUARD_THREADED_DISPATCH
void
FastModel::stepThreaded(uint64_t limit)
{
#define VG_THREADED 1
#include "uarch/fast_loop.inc"
#undef VG_THREADED
}
#endif


/** True when this run may take the fused fast path. */
bool
fastEligible(const SimOptions &opts)
{
    if (opts.forceReference || opts.lockstep != nullptr ||
        opts.trace != nullptr) {
        return false;
    }
    return !referenceForcedByEnv();
}

/**
 * Default committed-instruction quantum per lane turn in
 * simulateBatch(): large enough that the resume() bookkeeping is
 * noise (one virtual-free call per ~16k instructions), small enough
 * that all lanes' hot state keeps cycling through the host caches.
 */
constexpr uint64_t kDefaultBatchQuantum = 131072;

} // namespace

SimStats
simulate(const Program &prog, Memory &mem,
         DirectionPredictor &predictor, const MachineConfig &cfg,
         const SimOptions &opts)
{
    if (fastEligible(opts)) {
        DecodedProgram decoded =
            DecodedProgram::decode(prog, cfg.l1i.lineBytes);
        FastModel model(decoded, mem, predictor, cfg, opts);
        return model.run();
    }
    ReferenceModel model(prog, mem, predictor, cfg, opts);
    return model.run();
}

SimStats
simulateWithDecoded(const Program &prog, const DecodedProgram &decoded,
                    Memory &mem, DirectionPredictor &predictor,
                    const MachineConfig &cfg, const SimOptions &opts)
{
    if (fastEligible(opts)) {
        FastModel model(decoded, mem, predictor, cfg, opts);
        return model.run();
    }
    ReferenceModel model(prog, mem, predictor, cfg, opts);
    return model.run();
}

bool
threadedDispatchAvailable()
{
    return VANGUARD_THREADED_DISPATCH != 0;
}

bool
referenceForcedByEnv()
{
    const char *env = std::getenv("VANGUARD_FORCE_REFERENCE");
    return env != nullptr && env[0] != '\0' && env[0] != '0';
}

std::vector<BatchLaneResult>
simulateBatch(const Program &prog, const DecodedProgram &decoded,
              const std::vector<BatchLaneInput> &lanes,
              const MachineConfig &cfg, const SimOptions &opts)
{
    std::vector<BatchLaneResult> results(lanes.size());

    if (!fastEligible(opts)) {
        // Kill switches (forceReference, VANGUARD_FORCE_REFERENCE)
        // route every lane through the reference path, back to back;
        // per-lane results and failure isolation are preserved.
        for (size_t i = 0; i < lanes.size(); ++i) {
            SimOptions lane_opts = opts;
            lane_opts.predictOutcomes = lanes[i].predictOutcomes;
            try {
                ReferenceModel model(prog, *lanes[i].mem,
                                     *lanes[i].predictor, cfg,
                                     lane_opts);
                results[i].stats = model.run();
            } catch (const SimError &e) {
                results[i].failed = true;
                results[i].errorKind = e.kind();
                results[i].errorMessage = e.what();
            }
        }
        return results;
    }

    const uint64_t quantum = opts.batchQuantum != 0
        ? opts.batchQuantum
        : kDefaultBatchQuantum;

    // Per-lane options must outlive the models (each model keeps a
    // reference); sized once up front so the addresses are stable.
    std::vector<SimOptions> lane_opts(lanes.size(), opts);
    std::vector<std::unique_ptr<FastModel>> models(lanes.size());
    for (size_t i = 0; i < lanes.size(); ++i) {
        lane_opts[i].predictOutcomes = lanes[i].predictOutcomes;
        models[i] = std::make_unique<FastModel>(decoded, *lanes[i].mem,
                                                *lanes[i].predictor,
                                                cfg, lane_opts[i]);
    }

    // Round-robin quanta: each turn is exactly a chunk of that lane's
    // solo run, so interleaving cannot change any lane's results. A
    // lane that halts (or errors) drains out of the rotation and the
    // survivors keep going.
    size_t active = models.size();
    while (active > 0) {
        for (size_t i = 0; i < models.size(); ++i) {
            if (models[i] == nullptr)
                continue;
            try {
                models[i]->resume(quantum);
                if (models[i]->finished()) {
                    results[i].stats = models[i]->takeStats();
                    models[i].reset();
                    --active;
                }
            } catch (const SimError &e) {
                results[i].failed = true;
                results[i].errorKind = e.kind();
                results[i].errorMessage = e.what();
                models[i].reset();
                --active;
            }
        }
    }
    return results;
}

MetricSnapshot
simStatsSnapshot(const SimStats &stats)
{
    MetricSnapshot snap;
    snap.add("uarch.pipeline.cycles", stats.cycles);
    snap.add("uarch.pipeline.dynamicInsts", stats.dynamicInsts);
    snap.add("uarch.pipeline.fetched", stats.fetched);
    snap.add("uarch.pipeline.issued", stats.issued);
    snap.add("uarch.pipeline.condBranches", stats.condBranches);
    snap.add("uarch.pipeline.brMispredicts", stats.brMispredicts);
    snap.add("uarch.pipeline.predictsExecuted", stats.predictsExecuted);
    snap.add("uarch.pipeline.resolvesExecuted", stats.resolvesExecuted);
    snap.add("uarch.pipeline.resolveRedirects", stats.resolveRedirects);
    snap.add("uarch.pipeline.branchStallCycles",
             stats.branchStallCycles);
    snap.add("uarch.pipeline.branchStallEvents",
             stats.branchStallEvents);
    snap.add("uarch.pipeline.fetchBufferStalls",
             stats.fetchBufferStalls);
    snap.add("uarch.pipeline.speculativeExecs", stats.speculativeExecs);
    snap.add("uarch.pipeline.foldedCommitMovs", stats.foldedCommitMovs);
    snap.add("uarch.icache.lineAccesses", stats.icacheLineAccesses);
    snap.add("uarch.icache.misses", stats.icacheMisses);
    snap.add("uarch.l1d.accesses", stats.l1dAccesses);
    snap.add("uarch.l1d.misses", stats.l1dMisses);
    snap.add("uarch.l2.misses", stats.l2Misses);
    snap.add("uarch.l3.misses", stats.l3Misses);
    snap.add("uarch.dbb.fullStalls", stats.dbbFullStalls);
    snap.add("uarch.dbb.maxOccupancy", stats.dbbMaxOccupancy,
             MetricSnapshot::Agg::Max);
    snap.add("uarch.mshr.stalls", stats.mshrStalls);
    for (const auto &kv : stats.bpredCounters)
        snap.add(kv.first, kv.second);
    return snap;
}

std::vector<bool>
prerecordPredictOutcomes(const Program &prog, const Memory &mem,
                         uint64_t max_insts)
{
    Memory scratch = mem; // functional pre-pass must not disturb state
    ProgramExecutor exec(prog, scratch);
    std::vector<bool> outcomes;
    outcomes.reserve(4096); // grows by doubling; skip the small steps

    exec.setPredictHook([&](const LaidInst &) {
        outcomes.push_back(false); // placeholder; filled at RESOLVE
        return false;
    });

    // PREDICTs whose original-branch outcome is still unknown. Bounded
    // only by program shape (not MachineConfig), so the ring grows
    // geometrically if a kernel ever keeps more in flight; steady
    // state allocates nothing.
    RingFifo<size_t> pending(64, /*growable=*/true);
    uint64_t steps = 0;
    size_t predict_count = 0;
    while (!exec.halted() && steps < max_insts) {
        auto info = exec.step();
        if (info.inst == nullptr)
            break;
        ++steps;
        if (info.inst->inst.op == Opcode::PREDICT) {
            pending.push_back(predict_count++);
        } else if (info.inst->inst.op == Opcode::RESOLVE) {
            vg_assert(!pending.empty(),
                      "RESOLVE without outstanding PREDICT");
            bool outcome = info.taken
                ? !info.inst->inst.resolvePathTaken
                : info.inst->inst.resolvePathTaken;
            outcomes[pending.front()] = outcome;
            pending.pop_front();
        }
    }
    return outcomes;
}

} // namespace vanguard
