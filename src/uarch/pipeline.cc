#include "uarch/pipeline.hh"

#include <cstdlib>
#include <cstring>

#include "bpred/btb.hh"
#include "bpred/dispatch.hh"
#include "exec/decoded_program.hh"
#include "support/fault_inject.hh"
#include "support/logging.hh"
#include "support/ring.hh"

namespace vanguard {

namespace {

/**
 * Largest stall-accounting key any BR/RESOLVE in prog reports (BR ->
 * its own id, RESOLVE -> origBranch), or kNoInst when there is none.
 * Sizes the dense per-branch stall accumulators; both execution paths
 * must size them identically for bit-identical SimStats.
 */
InstId
stallKeyBound(const Program &prog)
{
    InstId max_id = kNoInst;
    for (size_t i = 0; i < prog.size(); ++i) {
        const Instruction &inst = prog.at(i).inst;
        InstId key = kNoInst;
        if (inst.op == Opcode::BR)
            key = inst.id;
        else if (inst.op == Opcode::RESOLVE)
            key = inst.origBranch;
        if (key != kNoInst && (max_id == kNoInst || key > max_id))
            max_id = key;
    }
    return max_id;
}

/**
 * Cycle-accounting machinery shared by both execution paths: machine
 * state (caches, BTB, DBB), fetch/issue bookkeeping, and the
 * allocation-free queues of the cycle loop. The two subclasses differ
 * only in how the committed instruction stream is produced —
 * ReferenceModel interprets Instruction records through a
 * ProgramExecutor with std::function hooks (the retained pre-decode
 * baseline), FastModel runs a fused decode/execute/time loop over a
 * DecodedProgram — so every cycle-level decision lives here exactly
 * once and bit-identity between the paths holds by construction.
 *
 * Queue bounds (all derived from MachineConfig, so the cycle loop
 * never touches the heap):
 *  - dbb_free_cycles_ <= 2*dbbEntries - 1: a PREDICT drains it below
 *    dbbEntries before inserting, and at most dbbEntries RESOLVEs (the
 *    DBB's own capacity, asserted by its CircularBuffer) can push
 *    before the next PREDICT;
 *  - outstanding_misses_ <= mshrEntries: the MSHR loop pops below
 *    capacity before any insert. Only the minimum completion cycle is
 *    ever observed, so a flat min-heap is element-for-element
 *    equivalent to the std::multiset it replaces.
 */
class TimingCommon
{
  protected:
    TimingCommon(DirectionPredictor &predictor, const MachineConfig &cfg,
                 const SimOptions &opts, InstId stall_key_bound)
        : predictor_(predictor), cfg_(cfg), opts_(opts), hier_(cfg),
          btb_(cfg.btbIndexBits), dbb_(cfg.dbbEntries),
          fetch_ring_(cfg.fetchBufferEntries, 0),
          outstanding_misses_(cfg.mshrEntries),
          dbb_free_cycles_(2 * size_t{cfg.dbbEntries}),
          line_mask_(~uint64_t{cfg.l1i.lineBytes - 1}),
          fetch_slot_mask_(
              (cfg.fetchBufferEntries &
               (cfg.fetchBufferEntries - 1)) == 0
                  ? cfg.fetchBufferEntries - 1
                  : 0),
          width_(cfg.width), frontend_stages_(cfg.frontendStages),
          fetch_buffer_entries_(cfg.fetchBufferEntries),
          dbb_entries_(cfg.dbbEntries), mshr_entries_(cfg.mshrEntries),
          mem_ports_(cfg.memPorts), int_ports_(cfg.intPorts),
          fp_ports_(cfg.fpPorts), shadow_commit_(cfg.shadowCommit)
    {
        // Dense per-branch stall accumulators, sized once up front so
        // the hot loop never touches the hash map (and does nothing at
        // all when collection is off). Sized by the largest id a
        // BR/RESOLVE can report, not by program length.
        if (opts_.collectBranchStalls && stall_key_bound != kNoInst) {
            stall_cycles_by_id_.assign(stall_key_bound + 1, 0);
            stall_events_by_id_.assign(stall_key_bound + 1, 0);
        }
    }

    // --- fetch-side helpers -------------------------------------------

    /** Fetch one instruction; returns its fetch cycle. `line` is the
     *  instruction's I-cache line tag (pc masked with line_mask_). */
    uint64_t
    fetchInst(uint64_t line, uint64_t inst_seq)
    {
        uint64_t f = next_fetch_cycle_;

        // Fetch buffer back-pressure: slot of inst (seq - N) must have
        // drained.
        size_t n = fetch_buffer_entries_;
        if (inst_seq >= n) {
            uint64_t freed = fetch_ring_[fetchSlot(inst_seq)];
            if (freed > f) {
                f = freed;
                ++stats_.fetchBufferStalls;
            }
        }

        // I-cache: access on each new line.
        if (line != cur_fetch_line_) {
            ++stats_.icacheLineAccesses;
            unsigned extra = hier_.instAccess(line);
            if (extra > 0) {
                ++stats_.icacheMisses;
                f += extra;
            }
            cur_fetch_line_ = line;
        }

        // Bandwidth: width insts per cycle.
        if (f > cur_fetch_cycle_) {
            cur_fetch_cycle_ = f;
            fetched_in_cycle_ = 0;
        }
        if (fetched_in_cycle_ >= width_) {
            ++cur_fetch_cycle_;
            fetched_in_cycle_ = 0;
        }
        f = cur_fetch_cycle_;
        ++fetched_in_cycle_;
        ++stats_.fetched;
        next_fetch_cycle_ = cur_fetch_cycle_;
        return f;
    }

    /** Fetch-ring slot of inst_seq; mask when the buffer is a power of
     *  two (the common 32-entry case), avoiding a division per inst. */
    size_t
    fetchSlot(uint64_t inst_seq) const
    {
        return fetch_slot_mask_ != 0
            ? (inst_seq & fetch_slot_mask_)
            : (inst_seq % fetch_buffer_entries_);
    }

    /** Record when an instruction leaves the fetch buffer. */
    void
    recordDrain(uint64_t inst_seq, uint64_t leave_cycle)
    {
        fetch_ring_[fetchSlot(inst_seq)] = leave_cycle;
    }

    /** Steer fetch for a taken (correctly-predicted) control transfer. */
    void
    takenRedirect(uint64_t pc, uint64_t target, uint64_t fetch_cycle,
                  uint64_t decode_cycle)
    {
        uint64_t btb_target = 0;
        bool hit = btb_.lookup(pc, btb_target) && btb_target == target;
        next_fetch_cycle_ =
            std::max(next_fetch_cycle_,
                     hit ? fetch_cycle + 1 : decode_cycle + 1);
        btb_.insert(pc, target);
        cur_fetch_line_ = ~uint64_t{0};
    }

    /** Squash-and-redirect after a mispredict resolves at `done`. */
    void
    mispredictRedirect(uint64_t done)
    {
        next_fetch_cycle_ = std::max(next_fetch_cycle_, done);
        cur_fetch_line_ = ~uint64_t{0};
    }

    /**
     * DBB insert at decode; stalls the front end while the buffer is
     * full. Returns the (possibly delayed) decode cycle at which the
     * PREDICT actually drains.
     */
    uint64_t
    dbbAdmit(uint64_t decode)
    {
        while (!dbb_free_cycles_.empty() &&
               dbb_free_cycles_.front() <= decode) {
            dbb_free_cycles_.pop_front();
        }
        while (dbb_free_cycles_.size() >= dbb_entries_) {
            ++stats_.dbbFullStalls;
            decode = std::max(decode, dbb_free_cycles_.front() + 1);
            dbb_free_cycles_.pop_front();
            next_fetch_cycle_ = std::max(next_fetch_cycle_, decode - 1);
        }
        stats_.dbbMaxOccupancy =
            std::max<uint64_t>(stats_.dbbMaxOccupancy,
                               dbb_free_cycles_.size() + 1);
        return decode;
    }

    // --- issue-side helpers -------------------------------------------

    unsigned
    portCap(FuClass cls) const
    {
        switch (cls) {
          case FuClass::Mem:
            return mem_ports_;
          case FuClass::IntAlu:
            return int_ports_;
          case FuClass::Fp:
            return fp_ports_;
          case FuClass::None:
            return width_;
        }
        return width_;
    }

    /** In-order issue: find the first cycle >= earliest with a free
     *  slot and FU port, and claim them. */
    uint64_t
    computeIssue(uint64_t earliest, FuClass cls)
    {
        uint64_t c = std::max(earliest, prev_issue_cycle_);
        for (;;) {
            if (c > cur_issue_cycle_) {
                cur_issue_cycle_ = c;
                slots_used_ = 0;
                std::memset(ports_used_, 0, sizeof(ports_used_));
            }
            unsigned cls_idx = static_cast<unsigned>(cls);
            if (slots_used_ < width_ &&
                ports_used_[cls_idx] < portCap(cls)) {
                ++slots_used_;
                ++ports_used_[cls_idx];
                prev_issue_cycle_ = c;
                return c;
            }
            ++c;
        }
    }

    uint64_t
    srcReady(RegId src1, RegId src2, RegId src3) const
    {
        uint64_t ready = 0;
        if (src1 != kNoReg)
            ready = reg_ready_[src1];
        if (src2 != kNoReg && reg_ready_[src2] > ready)
            ready = reg_ready_[src2];
        if (src3 != kNoReg && reg_ready_[src3] > ready)
            ready = reg_ready_[src3];
        return ready;
    }

    /**
     * Branch-resolution stall accounting (the paper's ASPCB): cycles
     * between the branch reaching the issue stage and actually
     * issuing — queueing behind older in-flight work plus waiting for
     * its own condition operands. `key` is the branch's accumulator
     * index (BR -> id, RESOLVE -> origBranch).
     */
    void
    noteBranchStall(InstId key, uint64_t issue, uint64_t enter_issue)
    {
        uint64_t stall = issue - enter_issue;
        stats_.branchStallCycles += stall;
        ++stats_.branchStallEvents;
        if (opts_.collectBranchStalls &&
            key < stall_cycles_by_id_.size()) {
            stall_cycles_by_id_[key] += stall;
            ++stall_events_by_id_[key];
        }
    }

    /** MSHR occupancy gating for a load entering issue. */
    uint64_t
    mshrAdmit(uint64_t earliest)
    {
        while (!outstanding_misses_.empty() &&
               outstanding_misses_.min() <= earliest) {
            outstanding_misses_.pop_min();
        }
        while (outstanding_misses_.size() >= mshr_entries_) {
            ++stats_.mshrStalls;
            earliest = std::max(earliest, outstanding_misses_.min());
            outstanding_misses_.pop_min();
        }
        return earliest;
    }

    /** Charge one data-side hierarchy access and count per-level. */
    MemAccessResult
    dataAccess(uint64_t addr)
    {
        MemAccessResult res = hier_.dataAccess(addr);
        ++stats_.l1dAccesses;
        if (res.level >= 2)
            ++stats_.l1dMisses;
        if (res.level >= 3)
            ++stats_.l2Misses;
        if (res.level >= 4)
            ++stats_.l3Misses;
        return res;
    }

    void
    traceRecord(uint64_t pc, Opcode op, uint64_t fetch, uint64_t issue,
                uint64_t done, bool issued, bool redirected)
    {
        if (opts_.trace != nullptr) {
            // Unconditional: the window itself counts overflow so the
            // Gantt footer can report how much it dropped.
            opts_.trace->record(
                {pc, op, fetch, issue, done, issued, redirected});
        }
    }

    // --- end-of-run reporting -----------------------------------------

    void
    finalizeStats()
    {
        stats_.cycles = max_done_ + 1;

        // One pass builds the per-branch map callers expect; sized to
        // the touched-entry count so it never rehashes.
        if (opts_.collectBranchStalls) {
            size_t touched = 0;
            for (uint64_t events : stall_events_by_id_)
                touched += events != 0;
            stats_.branchStalls.reserve(touched);
            for (InstId id = 0; id < stall_events_by_id_.size(); ++id) {
                if (stall_events_by_id_[id] != 0) {
                    stats_.branchStalls.emplace(
                        id, std::make_pair(stall_cycles_by_id_[id],
                                           stall_events_by_id_[id]));
                }
            }
        }

        // Export the predictor's internal counters under a sanitized
        // "bpred.<name>." prefix so they ride along with the run's
        // stats (and survive journal round-trips like every other
        // counter).
        MetricSnapshot snap;
        predictor_.exportMetrics(
            snap, "bpred." + sanitizeMetricKey(predictor_.name()) + ".");
        stats_.bpredCounters.reserve(snap.entries.size());
        for (const auto &e : snap.entries)
            stats_.bpredCounters.emplace_back(e.path, e.value);
    }

    DirectionPredictor &predictor_;
    const MachineConfig &cfg_;
    const SimOptions &opts_;

    MemoryHierarchy hier_;
    BranchTargetBuffer btb_;
    DecomposedBranchBuffer dbb_;
    SimStats stats_;

    // fetch state
    uint64_t next_fetch_cycle_ = 0;
    uint64_t cur_fetch_cycle_ = 0;
    unsigned fetched_in_cycle_ = 0;
    uint64_t cur_fetch_line_ = ~uint64_t{0};
    std::vector<uint64_t> fetch_ring_;

    // issue state
    uint64_t prev_issue_cycle_ = 0;
    uint64_t cur_issue_cycle_ = 0;
    unsigned slots_used_ = 0;
    unsigned ports_used_[4] = {};
    uint64_t reg_ready_[kNumRegs] = {};

    // memory-system state: completion cycles of in-flight misses.
    BoundedMinHeap outstanding_misses_;

    // DBB timing state: free cycles of inserted entries, FIFO order.
    RingFifo<uint64_t> dbb_free_cycles_;

    // Per-branch stall accumulators (only sized when
    // opts.collectBranchStalls); densified into stats_.branchStalls
    // once at the end of run().
    std::vector<uint64_t> stall_cycles_by_id_;
    std::vector<uint64_t> stall_events_by_id_;

    /** Config-derived I-line mask, computed once (not per fetch). */
    const uint64_t line_mask_;

    /** fetchBufferEntries-1 when a power of two, else 0 (division
     *  fallback in fetchSlot). */
    const uint64_t fetch_slot_mask_;

    // Hot MachineConfig fields copied by value: reads through the
    // cfg_ reference cannot be hoisted by the compiler past the
    // model's own stores (potential aliasing), so the cycle loop would
    // reload them every instruction.
    const unsigned width_;
    const unsigned frontend_stages_;
    const unsigned fetch_buffer_entries_;
    const unsigned dbb_entries_;
    const unsigned mshr_entries_;
    const unsigned mem_ports_;
    const unsigned int_ports_;
    const unsigned fp_ports_;
    const bool shadow_commit_;

    uint64_t predict_seq_ = 0;
    DbbEntry pending_predict_;
    uint64_t max_done_ = 0;
};

/**
 * The retained reference path: a ProgramExecutor interprets
 * Instruction records and drives the timing model through StepInfo,
 * with std::function predict/store hooks and virtual predictor
 * dispatch — the pre-decode execution model this PR's fast path is
 * benchmarked against and held bit-identical to. Runs that need the
 * executor's taps (lockstep oracle, pipeline trace) always take this
 * path.
 */
class ReferenceModel : public TimingCommon
{
  public:
    ReferenceModel(const Program &prog, Memory &mem,
                   DirectionPredictor &predictor,
                   const MachineConfig &cfg, const SimOptions &opts)
        : TimingCommon(predictor, cfg, opts, stallKeyBound(prog)),
          prog_(prog), exec_(prog, mem)
    {
        exec_.setPredictHook([this](const LaidInst &li) {
            return onPredictFetch(li);
        });
        if (opts_.lockstep != nullptr) {
            exec_.setStoreHook([this](uint64_t addr, int64_t value) {
                opts_.lockstep->onStore(addr, value);
            });
        }
    }

    SimStats run();

  private:
    /** Predict hook: called by the executor when a PREDICT is reached;
     *  the returned direction is the architectural path. */
    bool
    onPredictFetch(const LaidInst &li)
    {
        PredMeta meta;
        bool dir;
        if (opts_.predictOutcomes != nullptr) {
            vg_assert(predict_seq_ < opts_.predictOutcomes->size(),
                      "prerecorded predict outcomes exhausted");
            dir = predictor_.predictWithOracle(
                li.pc, (*opts_.predictOutcomes)[predict_seq_], meta);
        } else {
            dir = predictor_.predict(li.pc, meta);
        }
        ++predict_seq_;
        pending_predict_ = {li.pc, meta, dir, true};
        return dir;
    }

    void timeInst(const ProgramExecutor::StepInfo &info,
                  uint64_t inst_seq);

    const Program &prog_;
    ProgramExecutor exec_;
};

void
ReferenceModel::timeInst(const ProgramExecutor::StepInfo &info,
                         uint64_t inst_seq)
{
    const LaidInst &li = *info.inst;
    const Instruction &inst = li.inst;

    uint64_t f = fetchInst(li.pc & line_mask_, inst_seq);
    uint64_t decode = f + 1;
    uint64_t enter_issue = f + frontend_stages_ - 1;
    max_done_ = std::max(max_done_, enter_issue);

    switch (inst.op) {
      case Opcode::HALT:
        recordDrain(inst_seq, decode);
        traceRecord(li.pc, inst.op, f, decode, decode, false, false);
        stats_.halted = true;
        return;

      case Opcode::JMP:
        // Direct jumps are handled in the front end; no issue slot.
        recordDrain(inst_seq, decode);
        takenRedirect(li.pc, li.takenPc, f, decode);
        traceRecord(li.pc, inst.op, f, decode, decode, false, false);
        return;

      case Opcode::PREDICT: {
        ++stats_.predictsExecuted;
        decode = dbbAdmit(decode);
        dbb_.insert(pending_predict_.predictPc, pending_predict_.meta,
                    pending_predict_.predictedTaken);
        recordDrain(inst_seq, decode); // dropped after decode
        if (info.taken)
            takenRedirect(li.pc, li.takenPc, f, decode);
        traceRecord(li.pc, inst.op, f, decode, decode, false, false);
        return;
      }

      case Opcode::BR: {
        ++stats_.condBranches;
        PredMeta meta;
        bool pred =
            predictor_.predictWithOracle(li.pc, info.taken, meta);
        predictor_.updateHistory(info.taken);
        predictor_.update(li.pc, info.taken, meta);

        uint64_t earliest =
            std::max(enter_issue,
                     srcReady(inst.src1, inst.src2, inst.src3));
        uint64_t issue = computeIssue(earliest, FuClass::IntAlu);
        uint64_t done = issue + 1;
        max_done_ = std::max(max_done_, done);
        ++stats_.issued;
        recordDrain(inst_seq, issue);
        noteBranchStall(inst.id, issue, enter_issue);

        bool mispredicted = pred != info.taken;
        if (mispredicted) {
            ++stats_.brMispredicts;
            mispredictRedirect(done);
            if (info.taken)
                btb_.insert(li.pc, li.takenPc);
        } else if (info.taken) {
            takenRedirect(li.pc, li.takenPc, f, decode);
        }
        traceRecord(li.pc, inst.op, f, issue, done, true, mispredicted);
        return;
      }

      case Opcode::RESOLVE: {
        ++stats_.resolvesExecuted;
        // Associate with the oldest outstanding PREDICT (paper: the
        // tail-pointer index captured at decode) and train through it.
        DbbEntry entry = dbb_.resolveOldest();
        bool outcome = info.taken ? !inst.resolvePathTaken
                                  : inst.resolvePathTaken;
        if (entry.valid) {
            predictor_.updateHistory(outcome);
            predictor_.update(entry.predictPc, outcome, entry.meta);
        }

        uint64_t earliest =
            std::max(enter_issue,
                     srcReady(inst.src1, inst.src2, inst.src3));
        uint64_t issue = computeIssue(earliest, FuClass::IntAlu);
        uint64_t done = issue + 1;
        max_done_ = std::max(max_done_, done);
        ++stats_.issued;
        recordDrain(inst_seq, issue);
        noteBranchStall(inst.origBranch, issue, enter_issue);
        dbb_free_cycles_.push_back(done);

        if (info.taken) {
            // The PREDICT was wrong: redirect to correction code.
            ++stats_.resolveRedirects;
            mispredictRedirect(done);
        }
        traceRecord(li.pc, inst.op, f, issue, done, true, info.taken);
        return;
      }

      default:
        break;
    }

    // Shadow-commit folding: temp->arch MOVs become rename updates.
    if (shadow_commit_ && inst.op == Opcode::MOV &&
        isTempReg(inst.src1) && isArchReg(inst.dst)) {
        reg_ready_[inst.dst] = reg_ready_[inst.src1];
        ++stats_.foldedCommitMovs;
        recordDrain(inst_seq, decode);
        traceRecord(li.pc, inst.op, f, decode, decode, false, false);
        return;
    }

    if (opts_.hoistedMask != nullptr && inst.id != kNoInst &&
        inst.id < opts_.hoistedMask->size() &&
        (*opts_.hoistedMask)[inst.id]) {
        ++stats_.speculativeExecs;
    }

    uint64_t earliest =
        std::max(enter_issue,
                 srcReady(inst.src1, inst.src2, inst.src3));
    FuClass cls = inst.fuClass();
    uint64_t done;

    if (inst.isLoad()) {
        earliest = mshrAdmit(earliest);
        uint64_t issue = computeIssue(earliest, cls);
        MemAccessResult res = dataAccess(info.memAddr);
        done = issue + res.latency;
        if (res.level >= 2)
            outstanding_misses_.push(done);
        reg_ready_[inst.dst] = done;
        recordDrain(inst_seq, issue);
    } else if (inst.isStore()) {
        uint64_t issue = computeIssue(earliest, cls);
        dataAccess(info.memAddr);
        // Stores retire through the store buffer; 1 cycle to the
        // pipeline.
        done = issue + 1;
        recordDrain(inst_seq, issue);
    } else {
        uint64_t issue = computeIssue(earliest, cls);
        done = issue + inst.latency();
        if (inst.writesDst())
            reg_ready_[inst.dst] = done;
        recordDrain(inst_seq, issue);
    }
    ++stats_.issued;
    max_done_ = std::max(max_done_, done);
    traceRecord(li.pc, inst.op, f, prev_issue_cycle_, done, true, false);
}

SimStats
ReferenceModel::run()
{
    uint64_t inst_seq = 0;
    uint64_t last_commit_cycle = 0;
    while (!exec_.halted() && stats_.dynamicInsts < opts_.maxInsts) {
        auto info = exec_.step();
        if (info.inst == nullptr)
            break;
        ++stats_.dynamicInsts;
        if (info.fault) {
            stats_.faulted = true;
            vg_throw(Fault,
                     "simulated program faulted at pc 0x%llx (inst %u, "
                     "%llu insts retired)",
                     static_cast<unsigned long long>(info.inst->pc),
                     info.inst->inst.id,
                     static_cast<unsigned long long>(
                         stats_.dynamicInsts));
        }
        timeInst(info, inst_seq);
        ++inst_seq;

        // Deterministic fault-injection sites, gated so an armed
        // injector costs one relaxed load per commit and a draw only
        // every 4096 insts (keyed by inst_seq, so the faulting point
        // is reproducible at any worker count).
        if (faultinject::armed() && (inst_seq & 4095) == 0) {
            faultinject::site("pipeline.cycle", SimError::Kind::Hang);
            faultinject::site("pipeline.commit",
                              SimError::Kind::Fault);
        }

        // Forward-progress watchdogs: a runaway program (cycle budget)
        // or a timing-model bug that stops retiring work (progress
        // window) surfaces as a structured Hang instead of wedging the
        // experiment pool.
        if (opts_.cycleBudget != 0 && max_done_ > opts_.cycleBudget) {
            vg_throw(Hang,
                     "cycle budget exceeded: %llu cycles > budget %llu "
                     "after %llu retired insts (pc 0x%llx)",
                     static_cast<unsigned long long>(max_done_),
                     static_cast<unsigned long long>(opts_.cycleBudget),
                     static_cast<unsigned long long>(
                         stats_.dynamicInsts),
                     static_cast<unsigned long long>(info.inst->pc));
        }
        if (opts_.progressWindow != 0 &&
            max_done_ - last_commit_cycle > opts_.progressWindow) {
            vg_throw(Hang,
                     "no retired-instruction progress: clock advanced "
                     "%llu cycles across one commit (window %llu, pc "
                     "0x%llx)",
                     static_cast<unsigned long long>(
                         max_done_ - last_commit_cycle),
                     static_cast<unsigned long long>(
                         opts_.progressWindow),
                     static_cast<unsigned long long>(info.inst->pc));
        }
        last_commit_cycle = max_done_;

        if (stats_.halted)
            break;
    }
    if (opts_.lockstep != nullptr && stats_.halted)
        opts_.lockstep->onHalt(exec_.regs());
    finalizeStats();
    return stats_;
}

/**
 * The fast path: a fused decode/execute/time loop over a
 * DecodedProgram. Architectural state (registers, memory) is advanced
 * inline by a single switch that replicates exec/semantics.cc exactly
 * — including the DIV wrap/fault, LD_S zero-fill, and shift-mask edge
 * cases — and every cycle-accounting decision goes through the same
 * TimingCommon helpers as the reference path. Predictor calls go
 * through the sealed PredictorDispatch (direct, inlineable calls for
 * every factory predictor) in the same per-instruction order the
 * reference path makes them, so predictions, history, and telemetry
 * counters are bit-identical.
 */
class FastModel : public TimingCommon
{
  public:
    FastModel(const DecodedProgram &decoded, Memory &mem,
              DirectionPredictor &predictor, const MachineConfig &cfg,
              const SimOptions &opts)
        : TimingCommon(predictor, cfg, opts, decoded.maxStallKey()),
          code_(decoded.insts()), code_size_(decoded.size()),
          mem_(mem), pdx_(predictor),
          use_line_tags_(decoded.lineBytes() == cfg.l1i.lineBytes)
    {
        // Expand the per-InstId hoisted mask to a per-instruction-index
        // byte array: the id -> bit lookup is static, so hoisting it
        // out of the cycle loop cannot change what is counted.
        if (opts_.hoistedMask != nullptr) {
            hoisted_.assign(code_size_, 0);
            const std::vector<bool> &mask = *opts_.hoistedMask;
            for (size_t i = 0; i < code_size_; ++i) {
                InstId id = code_[i].id;
                if (id != kNoInst && id < mask.size() && mask[id])
                    hoisted_[i] = 1;
            }
        }
    }

    SimStats run();

  private:
    int64_t
    src2Value(const DecodedInst &d) const
    {
        return d.hasImmSrc2() ? d.imm : regs_[d.src2];
    }

    [[noreturn]] void
    faultThrow(const DecodedInst &d)
    {
        stats_.faulted = true;
        vg_throw(Fault,
                 "simulated program faulted at pc 0x%llx (inst %u, "
                 "%llu insts retired)",
                 static_cast<unsigned long long>(d.pc), d.id,
                 static_cast<unsigned long long>(stats_.dynamicInsts));
    }

    bool
    predictLookup(uint64_t pc)
    {
        // Fill pending_predict_ in place (one fresh-meta write instead
        // of a fresh local plus an 80-byte struct copy per PREDICT).
        pending_predict_.meta = PredMeta{};
        bool dir;
        if (opts_.predictOutcomes != nullptr) {
            vg_assert(predict_seq_ < opts_.predictOutcomes->size(),
                      "prerecorded predict outcomes exhausted");
            dir = pdx_.predictWithOracle(
                pc, (*opts_.predictOutcomes)[predict_seq_],
                pending_predict_.meta);
        } else {
            dir = pdx_.predict(pc, pending_predict_.meta);
        }
        ++predict_seq_;
        pending_predict_.predictPc = pc;
        pending_predict_.predictedTaken = dir;
        pending_predict_.valid = true;
        return dir;
    }

    const DecodedInst *code_;
    size_t code_size_;
    Memory &mem_;
    PredictorDispatch pdx_;
    int64_t regs_[kNumRegs] = {};
    std::vector<uint8_t> hoisted_;  ///< by instruction index
    const bool use_line_tags_;
};

SimStats
FastModel::run()
{
    size_t idx = 0;
    uint64_t inst_seq = 0;
    uint64_t last_commit_cycle = 0;

    // Hoisted once: the compiler cannot prove opts_ fields don't alias
    // the stats the loop writes, so reading them through the reference
    // would reload every iteration.
    const uint64_t max_insts = opts_.maxInsts;
    const uint64_t cycle_budget = opts_.cycleBudget;
    const uint64_t progress_window = opts_.progressWindow;

    while (stats_.dynamicInsts < max_insts) {
        vg_assert(idx < code_size_, "pc 0x%llx out of program",
                  static_cast<unsigned long long>(
                      kCodeBase + idx * kInstBytes));
        const DecodedInst &d = code_[idx];
        ++stats_.dynamicInsts;
        size_t next = idx + 1;

        switch (d.op) {
          case Opcode::HALT: {
            uint64_t line =
                use_line_tags_ ? d.lineTag : (d.pc & line_mask_);
            uint64_t f = fetchInst(line, inst_seq);
            uint64_t enter_issue = f + frontend_stages_ - 1;
            max_done_ = std::max(max_done_, enter_issue);
            recordDrain(inst_seq, f + 1);
            stats_.halted = true;
            break;
          }

          case Opcode::JMP: {
            uint64_t line =
                use_line_tags_ ? d.lineTag : (d.pc & line_mask_);
            uint64_t f = fetchInst(line, inst_seq);
            uint64_t decode = f + 1;
            uint64_t enter_issue = f + frontend_stages_ - 1;
            max_done_ = std::max(max_done_, enter_issue);
            recordDrain(inst_seq, decode);
            takenRedirect(d.pc, d.takenPc, f, decode);
            next = d.takenIdx;
            break;
          }

          case Opcode::PREDICT: {
            // Predictor lookup first (the reference path consults it
            // while the executor steps, before fetch timing).
            bool dir = predictLookup(d.pc);
            uint64_t line =
                use_line_tags_ ? d.lineTag : (d.pc & line_mask_);
            uint64_t f = fetchInst(line, inst_seq);
            uint64_t enter_issue = f + frontend_stages_ - 1;
            max_done_ = std::max(max_done_, enter_issue);
            ++stats_.predictsExecuted;
            uint64_t decode = dbbAdmit(f + 1);
            dbb_.insert(pending_predict_.predictPc,
                        pending_predict_.meta,
                        pending_predict_.predictedTaken);
            recordDrain(inst_seq, decode); // dropped after decode
            if (dir)
                takenRedirect(d.pc, d.takenPc, f, decode);
            next = dir ? size_t{d.takenIdx} : idx + 1;
            break;
          }

          case Opcode::BR: {
            bool taken = regs_[d.src1] != 0;
            uint64_t line =
                use_line_tags_ ? d.lineTag : (d.pc & line_mask_);
            uint64_t f = fetchInst(line, inst_seq);
            uint64_t decode = f + 1;
            uint64_t enter_issue = f + frontend_stages_ - 1;
            max_done_ = std::max(max_done_, enter_issue);

            ++stats_.condBranches;
            PredMeta meta;
            bool pred = pdx_.predictWithOracle(d.pc, taken, meta);
            pdx_.updateHistory(taken);
            pdx_.update(d.pc, taken, meta);

            uint64_t earliest =
                std::max(enter_issue,
                         srcReady(d.src1, d.src2, d.src3));
            uint64_t issue = computeIssue(earliest, FuClass::IntAlu);
            uint64_t done = issue + 1;
            max_done_ = std::max(max_done_, done);
            ++stats_.issued;
            recordDrain(inst_seq, issue);
            noteBranchStall(d.stallKey, issue, enter_issue);

            if (pred != taken) {
                ++stats_.brMispredicts;
                mispredictRedirect(done);
                if (taken)
                    btb_.insert(d.pc, d.takenPc);
            } else if (taken) {
                takenRedirect(d.pc, d.takenPc, f, decode);
            }
            next = taken ? size_t{d.takenIdx} : idx + 1;
            break;
          }

          case Opcode::RESOLVE: {
            bool taken = regs_[d.src1] != 0;
            uint64_t line =
                use_line_tags_ ? d.lineTag : (d.pc & line_mask_);
            uint64_t f = fetchInst(line, inst_seq);
            uint64_t enter_issue = f + frontend_stages_ - 1;
            max_done_ = std::max(max_done_, enter_issue);

            ++stats_.resolvesExecuted;
            // Associate with the oldest outstanding PREDICT and train
            // through it.
            DbbEntry entry = dbb_.resolveOldest();
            bool outcome = taken ? !d.resolvePathTaken()
                                 : d.resolvePathTaken();
            if (entry.valid) {
                pdx_.updateHistory(outcome);
                pdx_.update(entry.predictPc, outcome, entry.meta);
            }

            uint64_t earliest =
                std::max(enter_issue,
                         srcReady(d.src1, d.src2, d.src3));
            uint64_t issue = computeIssue(earliest, FuClass::IntAlu);
            uint64_t done = issue + 1;
            max_done_ = std::max(max_done_, done);
            ++stats_.issued;
            recordDrain(inst_seq, issue);
            noteBranchStall(d.stallKey, issue, enter_issue);
            dbb_free_cycles_.push_back(done);

            if (taken) {
                // The PREDICT was wrong: redirect to correction code.
                ++stats_.resolveRedirects;
                mispredictRedirect(done);
            }
            next = taken ? size_t{d.takenIdx} : idx + 1;
            break;
          }

          default: {
            // Inline semantics (mirrors exec/semantics.cc case for
            // case); faults throw before any timing or state change,
            // matching the reference path's step-then-time order.
            int64_t value = 0;
            uint64_t addr = 0;
            int64_t store_val = 0;

            switch (d.op) {
              case Opcode::ADD:
              case Opcode::FADD:
                value = regs_[d.src1] + src2Value(d);
                break;
              case Opcode::SUB:
              case Opcode::FSUB:
                value = regs_[d.src1] - src2Value(d);
                break;
              case Opcode::AND:
                value = regs_[d.src1] & src2Value(d);
                break;
              case Opcode::OR:
                value = regs_[d.src1] | src2Value(d);
                break;
              case Opcode::XOR:
                value = regs_[d.src1] ^ src2Value(d);
                break;
              case Opcode::SHL:
                value = static_cast<int64_t>(
                    static_cast<uint64_t>(regs_[d.src1])
                    << (static_cast<uint64_t>(src2Value(d)) & 63));
                break;
              case Opcode::SHR:
                value = static_cast<int64_t>(
                    static_cast<uint64_t>(regs_[d.src1]) >>
                    (static_cast<uint64_t>(src2Value(d)) & 63));
                break;
              case Opcode::MOVI:
                value = d.imm;
                break;
              case Opcode::MOV:
                value = regs_[d.src1];
                break;
              case Opcode::SELECT:
                value = regs_[d.src1] != 0 ? regs_[d.src2]
                                           : regs_[d.src3];
                break;
              case Opcode::CMPEQ:
                value = regs_[d.src1] == src2Value(d) ? 1 : 0;
                break;
              case Opcode::CMPNE:
                value = regs_[d.src1] != src2Value(d) ? 1 : 0;
                break;
              case Opcode::CMPLT:
                value = regs_[d.src1] < src2Value(d) ? 1 : 0;
                break;
              case Opcode::CMPLE:
                value = regs_[d.src1] <= src2Value(d) ? 1 : 0;
                break;
              case Opcode::CMPGT:
                value = regs_[d.src1] > src2Value(d) ? 1 : 0;
                break;
              case Opcode::CMPGE:
                value = regs_[d.src1] >= src2Value(d) ? 1 : 0;
                break;
              case Opcode::MUL:
              case Opcode::FMUL:
                value = regs_[d.src1] * src2Value(d);
                break;
              case Opcode::DIV:
              case Opcode::FDIV: {
                int64_t denom = src2Value(d);
                int64_t num = regs_[d.src1];
                if (denom == 0) {
                    if (d.op == Opcode::DIV)
                        faultThrow(d);
                    value = 0; // FP lane: define x/0 == 0
                } else if (num == INT64_MIN && denom == -1) {
                    value = INT64_MIN; // wrap, matching idiv
                } else {
                    value = num / denom;
                }
                break;
              }
              case Opcode::LD:
              case Opcode::LD_S: {
                addr =
                    static_cast<uint64_t>(regs_[d.src1] + d.imm);
                if (!mem_.inBounds(addr)) {
                    if (d.op == Opcode::LD)
                        faultThrow(d);
                    value = 0; // non-faulting speculative load
                } else {
                    value = mem_.read64(addr);
                }
                break;
              }
              case Opcode::ST: {
                addr =
                    static_cast<uint64_t>(regs_[d.src1] + d.imm);
                store_val = regs_[d.src2];
                if (!mem_.inBounds(addr))
                    faultThrow(d);
                break;
              }
              case Opcode::NOP:
                break;
              default:
                vg_throw(Invariant,
                         "evaluate: bad opcode %u at pc 0x%llx (idx %zu)",
                         static_cast<unsigned>(d.op),
                         static_cast<unsigned long long>(d.pc), idx);
            }

            uint64_t line =
                use_line_tags_ ? d.lineTag : (d.pc & line_mask_);
            uint64_t f = fetchInst(line, inst_seq);
            uint64_t decode = f + 1;
            uint64_t enter_issue = f + frontend_stages_ - 1;
            max_done_ = std::max(max_done_, enter_issue);

            // Shadow-commit folding: temp->arch MOVs become rename
            // updates (timing only; the architectural copy commits
            // below either way).
            if (shadow_commit_ && d.op == Opcode::MOV &&
                isTempReg(d.src1) && isArchReg(d.dst)) {
                reg_ready_[d.dst] = reg_ready_[d.src1];
                ++stats_.foldedCommitMovs;
                recordDrain(inst_seq, decode);
                regs_[d.dst] = value;
                break;
            }

            if (!hoisted_.empty() && hoisted_[idx])
                ++stats_.speculativeExecs;

            uint64_t earliest =
                std::max(enter_issue,
                         srcReady(d.src1, d.src2, d.src3));
            uint64_t done;

            if (d.isLoad()) {
                earliest = mshrAdmit(earliest);
                uint64_t issue = computeIssue(earliest, FuClass::Mem);
                MemAccessResult res = dataAccess(addr);
                done = issue + res.latency;
                if (res.level >= 2)
                    outstanding_misses_.push(done);
                reg_ready_[d.dst] = done;
                recordDrain(inst_seq, issue);
            } else if (d.isStore()) {
                uint64_t issue = computeIssue(earliest, FuClass::Mem);
                dataAccess(addr);
                // Stores retire through the store buffer; 1 cycle to
                // the pipeline.
                done = issue + 1;
                recordDrain(inst_seq, issue);
            } else {
                uint64_t issue = computeIssue(
                    earliest, static_cast<FuClass>(d.fu));
                done = issue + d.latency;
                if (d.writesDst())
                    reg_ready_[d.dst] = done;
                recordDrain(inst_seq, issue);
            }
            ++stats_.issued;
            max_done_ = std::max(max_done_, done);

            // Architectural commit.
            if (d.isStore())
                mem_.write64(addr, store_val);
            else if (d.writesDst())
                regs_[d.dst] = value;
            break;
          }
        }

        ++inst_seq;

        // Deterministic fault-injection sites; the cheap sequence
        // gate runs before the (side-effect-free) armed() load so the
        // common case costs one predictable branch.
        if ((inst_seq & 4095) == 0 && faultinject::armed()) {
            faultinject::site("pipeline.cycle", SimError::Kind::Hang);
            faultinject::site("pipeline.commit",
                              SimError::Kind::Fault);
        }

        // Forward-progress watchdogs (same contract as the reference
        // path).
        if (cycle_budget != 0 && max_done_ > cycle_budget) {
            vg_throw(Hang,
                     "cycle budget exceeded: %llu cycles > budget %llu "
                     "after %llu retired insts (pc 0x%llx)",
                     static_cast<unsigned long long>(max_done_),
                     static_cast<unsigned long long>(cycle_budget),
                     static_cast<unsigned long long>(
                         stats_.dynamicInsts),
                     static_cast<unsigned long long>(d.pc));
        }
        if (progress_window != 0 &&
            max_done_ - last_commit_cycle > progress_window) {
            vg_throw(Hang,
                     "no retired-instruction progress: clock advanced "
                     "%llu cycles across one commit (window %llu, pc "
                     "0x%llx)",
                     static_cast<unsigned long long>(
                         max_done_ - last_commit_cycle),
                     static_cast<unsigned long long>(progress_window),
                     static_cast<unsigned long long>(d.pc));
        }
        last_commit_cycle = max_done_;

        if (stats_.halted)
            break;
        idx = next;
    }
    finalizeStats();
    return stats_;
}

/** True when this run may take the fused fast path. */
bool
fastEligible(const SimOptions &opts)
{
    if (opts.forceReference || opts.lockstep != nullptr ||
        opts.trace != nullptr) {
        return false;
    }
    const char *env = std::getenv("VANGUARD_FORCE_REFERENCE");
    if (env != nullptr && env[0] != '\0' && env[0] != '0')
        return false;
    return true;
}

} // namespace

SimStats
simulate(const Program &prog, Memory &mem,
         DirectionPredictor &predictor, const MachineConfig &cfg,
         const SimOptions &opts)
{
    if (fastEligible(opts)) {
        DecodedProgram decoded =
            DecodedProgram::decode(prog, cfg.l1i.lineBytes);
        FastModel model(decoded, mem, predictor, cfg, opts);
        return model.run();
    }
    ReferenceModel model(prog, mem, predictor, cfg, opts);
    return model.run();
}

SimStats
simulateWithDecoded(const Program &prog, const DecodedProgram &decoded,
                    Memory &mem, DirectionPredictor &predictor,
                    const MachineConfig &cfg, const SimOptions &opts)
{
    if (fastEligible(opts)) {
        FastModel model(decoded, mem, predictor, cfg, opts);
        return model.run();
    }
    ReferenceModel model(prog, mem, predictor, cfg, opts);
    return model.run();
}

MetricSnapshot
simStatsSnapshot(const SimStats &stats)
{
    MetricSnapshot snap;
    snap.add("uarch.pipeline.cycles", stats.cycles);
    snap.add("uarch.pipeline.dynamicInsts", stats.dynamicInsts);
    snap.add("uarch.pipeline.fetched", stats.fetched);
    snap.add("uarch.pipeline.issued", stats.issued);
    snap.add("uarch.pipeline.condBranches", stats.condBranches);
    snap.add("uarch.pipeline.brMispredicts", stats.brMispredicts);
    snap.add("uarch.pipeline.predictsExecuted", stats.predictsExecuted);
    snap.add("uarch.pipeline.resolvesExecuted", stats.resolvesExecuted);
    snap.add("uarch.pipeline.resolveRedirects", stats.resolveRedirects);
    snap.add("uarch.pipeline.branchStallCycles",
             stats.branchStallCycles);
    snap.add("uarch.pipeline.branchStallEvents",
             stats.branchStallEvents);
    snap.add("uarch.pipeline.fetchBufferStalls",
             stats.fetchBufferStalls);
    snap.add("uarch.pipeline.speculativeExecs", stats.speculativeExecs);
    snap.add("uarch.pipeline.foldedCommitMovs", stats.foldedCommitMovs);
    snap.add("uarch.icache.lineAccesses", stats.icacheLineAccesses);
    snap.add("uarch.icache.misses", stats.icacheMisses);
    snap.add("uarch.l1d.accesses", stats.l1dAccesses);
    snap.add("uarch.l1d.misses", stats.l1dMisses);
    snap.add("uarch.l2.misses", stats.l2Misses);
    snap.add("uarch.l3.misses", stats.l3Misses);
    snap.add("uarch.dbb.fullStalls", stats.dbbFullStalls);
    snap.add("uarch.dbb.maxOccupancy", stats.dbbMaxOccupancy,
             MetricSnapshot::Agg::Max);
    snap.add("uarch.mshr.stalls", stats.mshrStalls);
    for (const auto &kv : stats.bpredCounters)
        snap.add(kv.first, kv.second);
    return snap;
}

std::vector<bool>
prerecordPredictOutcomes(const Program &prog, const Memory &mem,
                         uint64_t max_insts)
{
    Memory scratch = mem; // functional pre-pass must not disturb state
    ProgramExecutor exec(prog, scratch);
    std::vector<bool> outcomes;
    outcomes.reserve(4096); // grows by doubling; skip the small steps

    exec.setPredictHook([&](const LaidInst &) {
        outcomes.push_back(false); // placeholder; filled at RESOLVE
        return false;
    });

    // PREDICTs whose original-branch outcome is still unknown. Bounded
    // only by program shape (not MachineConfig), so the ring grows
    // geometrically if a kernel ever keeps more in flight; steady
    // state allocates nothing.
    RingFifo<size_t> pending(64, /*growable=*/true);
    uint64_t steps = 0;
    size_t predict_count = 0;
    while (!exec.halted() && steps < max_insts) {
        auto info = exec.step();
        if (info.inst == nullptr)
            break;
        ++steps;
        if (info.inst->inst.op == Opcode::PREDICT) {
            pending.push_back(predict_count++);
        } else if (info.inst->inst.op == Opcode::RESOLVE) {
            vg_assert(!pending.empty(),
                      "RESOLVE without outstanding PREDICT");
            bool outcome = info.taken
                ? !info.inst->inst.resolvePathTaken
                : info.inst->inst.resolvePathTaken;
            outcomes[pending.front()] = outcome;
            pending.pop_front();
        }
    }
    return outcomes;
}

} // namespace vanguard
