#include "uarch/trace.hh"

#include <algorithm>
#include <cstdio>
#include <sstream>

namespace vanguard {

std::string
PipelineTrace::render(size_t max_cycles) const
{
    if (entries_.empty())
        return "(empty trace)\n";

    uint64_t base = entries_.front().fetchCycle;
    std::ostringstream os;
    os << "cycle offset from " << base << "; F fetch, I issue, = exec,"
       << " D done, . in-flight, ! redirect\n";

    for (const TraceEntry &e : entries_) {
        uint64_t f = e.fetchCycle - base;
        if (f >= max_cycles)
            break;
        uint64_t i = e.issueCycle - base;
        uint64_t d = e.doneCycle - base;

        char buf[64];
        std::snprintf(buf, sizeof(buf), "%08llx %-8s |",
                      static_cast<unsigned long long>(e.pc),
                      std::string(opcodeName(e.op)).c_str());
        os << buf;

        uint64_t end = std::min<uint64_t>(d, max_cycles - 1);
        for (uint64_t c = 0; c <= end; ++c) {
            char mark = ' ';
            if (c == f) {
                mark = 'F';
            } else if (!e.issued) {
                if (c > f && c <= i)
                    mark = '.';
            } else if (c == i) {
                mark = 'I';
            } else if (c == d) {
                mark = e.redirected ? '!' : 'D';
            } else if (c > f && c < i) {
                mark = '.';
            } else if (c > i && c < d) {
                mark = '=';
            }
            os << mark;
        }
        if (d >= max_cycles)
            os << "...";
        os << "\n";
    }
    if (dropped_ != 0) {
        os << "(window full: " << dropped_
           << " later instructions dropped; widen with"
              " --gantt-window)\n";
    }
    return os.str();
}

} // namespace vanguard
