/**
 * @file
 * Cycle-level in-order superscalar timing model.
 *
 * Execution-driven: a ProgramExecutor supplies the committed
 * instruction stream in program order (branch predictions steer
 * PREDICT instructions architecturally — in decomposed code the
 * predicted path is the architectural path), and the model assigns
 * fetch/issue/complete cycles online honoring:
 *
 *  - fetch: width insts/cycle, I$ line misses, 32-entry fetch buffer
 *    back-pressure, taken-branch redirect (1 cycle with BTB hit,
 *    decode re-steer on BTB miss), mispredict redirect (fetch resumes
 *    after the branch executes),
 *  - issue: strictly in order (head-of-line blocking), scoreboarded
 *    operand readiness with single-cycle full bypass, per-class FU
 *    ports, 64-entry miss buffer (MSHR) occupancy,
 *  - decomposed-branch hardware: PREDICTs are dropped at decode after
 *    inserting into the DBB (stalling when it is full); RESOLVEs are
 *    statically predicted not-taken, train the predictor through the
 *    DBB entry of their PREDICT, and redirect (mispredict-style) when
 *    taken; commit MOVs (temp->arch) are folded free at decode when
 *    the shadow-commit feature is on.
 *
 * Wrong-path instructions are not fetched/issued (their cycle cost is
 * charged as redirect delay); see DESIGN.md for the fidelity
 * discussion.
 */

#ifndef VANGUARD_UARCH_PIPELINE_HH
#define VANGUARD_UARCH_PIPELINE_HH

#include <string>
#include <unordered_map>
#include <vector>

#include "bpred/predictor.hh"
#include "compiler/layout.hh"
#include "support/error.hh"
#include "uarch/cache.hh"
#include "uarch/config.hh"
#include "uarch/dbb.hh"
#include "uarch/lockstep.hh"
#include "uarch/trace.hh"

namespace vanguard {

struct SimOptions
{
    uint64_t maxInsts = 50'000'000;

    /**
     * Forward-progress watchdog: total-cycle budget. A simulation
     * whose cycle count exceeds this raises SimError(Hang) instead of
     * grinding on (e.g. an IR loop that never reaches HALT wedging a
     * worker for the full instruction budget). 0 disables.
     */
    uint64_t cycleBudget = 0;

    /**
     * Forward-progress watchdog: maximum cycles the clock may advance
     * across one retired instruction. A single in-order commit is
     * bounded by the memory round-trip plus queueing (hundreds of
     * cycles), so a gap this large means the timing model itself lost
     * forward progress; raises SimError(Hang). 0 disables.
     */
    uint64_t progressWindow = 1'000'000;

    /**
     * Optional lockstep differential oracle: every committed store
     * (and the final architectural registers at HALT) is checked
     * against a golden functional run; the first mismatch raises
     * SimError(Divergence). See uarch/lockstep.hh.
     */
    LockstepChecker *lockstep = nullptr;

    /**
     * Pre-recorded original-branch outcomes for each dynamic PREDICT,
     * in execution order (needed only by oracle predictors, whose
     * prediction is a function of the actual outcome). Produced by
     * prerecordPredictOutcomes().
     */
    const std::vector<bool> *predictOutcomes = nullptr;

    /**
     * Optional mask over InstIds marking speculatively hoisted clones;
     * their dynamic executions are counted in SimStats::speculativeExecs
     * (the PDIH numerator).
     */
    const std::vector<bool> *hoistedMask = nullptr;

    /**
     * Collect per-branch issue-stall cycles (ASPCB ingredient). When
     * off, the per-branch accounting allocates nothing and touches no
     * hash map; when on, dense accumulators are sized once up front
     * and densified into SimStats::branchStalls at the end of the run.
     */
    bool collectBranchStalls = false;

    /** Optional pipeline timeline collector (see uarch/trace.hh). */
    PipelineTrace *trace = nullptr;

    /**
     * Force the retained reference path (ProgramExecutor-driven,
     * std::function hooks, virtual predictor dispatch) even when the
     * run is fast-path eligible. The reference path is the pre-decode
     * baseline kept for bit-identity testing (tests/test_fastpath.cc)
     * and for the self-benchmark's before/after comparison. The
     * environment variable VANGUARD_FORCE_REFERENCE=1 has the same
     * effect process-wide (used to A/B whole sweeps). Runs with a
     * lockstep checker or a pipeline trace attached use the reference
     * path regardless.
     */
    bool forceReference = false;

    /**
     * Force the portable switch dispatcher for the fast path even in
     * builds that carry the computed-goto (threaded-code) dispatcher.
     * Both dispatchers execute the same loop body, so this selects
     * machine code, never behavior. The environment variable
     * VANGUARD_THREADED=0 (or OFF/off) has the same effect
     * process-wide, mirroring VANGUARD_FORCE_REFERENCE.
     */
    bool noThreadedDispatch = false;

    /**
     * Instructions each batched lane advances per round-robin turn in
     * simulateBatch() (0 = the built-in default). A lane's chunked
     * stepping is observationally identical to one uninterrupted run,
     * so this tunes interleave granularity only; exposed so tests can
     * prove quantum-independence at extreme values.
     */
    uint64_t batchQuantum = 0;
};

struct SimStats
{
    uint64_t cycles = 0;
    uint64_t dynamicInsts = 0;  ///< committed program-order instructions
    uint64_t fetched = 0;
    uint64_t issued = 0;        ///< consumed an issue slot

    uint64_t condBranches = 0;      ///< dynamic BRs
    uint64_t brMispredicts = 0;     ///< BR direction mispredicts
    uint64_t predictsExecuted = 0;
    uint64_t resolvesExecuted = 0;
    uint64_t resolveRedirects = 0;  ///< RESOLVE taken (mispredict fixups)

    uint64_t icacheLineAccesses = 0;
    uint64_t icacheMisses = 0;
    uint64_t l1dAccesses = 0;
    uint64_t l1dMisses = 0;
    uint64_t l2Misses = 0;
    uint64_t l3Misses = 0;

    uint64_t branchStallCycles = 0;   ///< operand-wait at issue (BR+RESOLVE)
    uint64_t branchStallEvents = 0;
    uint64_t dbbFullStalls = 0;
    uint64_t dbbMaxOccupancy = 0;
    uint64_t fetchBufferStalls = 0;
    uint64_t mshrStalls = 0;
    uint64_t speculativeExecs = 0;
    uint64_t foldedCommitMovs = 0;

    bool halted = false;
    bool faulted = false;

    /** Per-branch-id (stall cycles, events); filled when requested. */
    std::unordered_map<InstId, std::pair<uint64_t, uint64_t>>
        branchStalls;

    /**
     * Predictor-internal counters exported at end of run under
     * "bpred.<sanitized name>." (lookups, updates, mispredicts, plus
     * model-specific extras such as TAGE provider attribution). Kept
     * as ordered pairs so journal round-trips preserve them exactly.
     */
    std::vector<std::pair<std::string, uint64_t>> bpredCounters;

    double
    ipc() const
    {
        return cycles == 0
            ? 0.0
            : static_cast<double>(dynamicInsts) /
                  static_cast<double>(cycles);
    }

    double
    mppki() const
    {
        return dynamicInsts == 0
            ? 0.0
            : 1000.0 *
                  static_cast<double>(brMispredicts + resolveRedirects) /
                  static_cast<double>(dynamicInsts);
    }
};

/**
 * Run prog to completion on the modeled machine.
 *
 * @param prog      laid-out program.
 * @param mem       initialized data memory (mutated).
 * @param predictor direction predictor (trained during the run).
 */
SimStats simulate(const Program &prog, Memory &mem,
                  DirectionPredictor &predictor,
                  const MachineConfig &cfg, const SimOptions &opts = {});

class DecodedProgram;

/**
 * simulate() against a pre-built DecodedProgram (see
 * exec/decoded_program.hh). The decoded form is a pure function of
 * (prog, I-line size), computed once per compile artifact and shared
 * read-only across seeds and configs; callers without one can use
 * simulate(), which decodes internally when the fast path is
 * eligible. `decoded` must have been produced from `prog`.
 */
SimStats simulateWithDecoded(const Program &prog,
                             const DecodedProgram &decoded, Memory &mem,
                             DirectionPredictor &predictor,
                             const MachineConfig &cfg,
                             const SimOptions &opts = {});

/**
 * True when this build carries the computed-goto threaded-code
 * dispatcher for the fast path (GCC/Clang builds with the CMake
 * option VANGUARD_THREADED left ON). When false, the fast path always
 * uses the portable switch dispatcher and SimOptions::noThreadedDispatch
 * is a no-op; callers that benchmark or gate on the threaded stream
 * use this to skip gracefully rather than measure the switch twice.
 */
bool threadedDispatchAvailable();

/**
 * True when VANGUARD_FORCE_REFERENCE is set (non-empty, not "0") in
 * the environment — the process-wide kill switch that routes every
 * simulation through the retained reference path. Exported so batching
 * layers can skip grouping work the fast path will not run anyway.
 */
bool referenceForcedByEnv();

/**
 * One lane of a multi-seed batched simulation: same DecodedProgram,
 * per-lane data memory, predictor, and (for oracle predictors)
 * pre-recorded PREDICT outcomes. The pointed-to objects are mutated
 * exactly as a solo simulate() call would mutate them.
 */
struct BatchLaneInput
{
    Memory *mem = nullptr;
    DirectionPredictor *predictor = nullptr;
    const std::vector<bool> *predictOutcomes = nullptr;
};

/** Per-lane outcome of simulateBatch(): stats, or an isolated error. */
struct BatchLaneResult
{
    SimStats stats;
    bool failed = false;
    SimError::Kind errorKind = SimError::Kind::Internal;
    std::string errorMessage;
};

/**
 * Run the same pre-decoded program over N seed lanes, interleaving
 * fixed-size instruction quanta round-robin across the lanes so one
 * hot dispatch loop (and its warm I-cache/BTB footprint) drives all of
 * them; lanes that halt early drain out and the rest keep going.
 *
 * Bit-identity holds per lane by construction: each lane is a complete
 * fast-path model of its own, merely paused and resumed at quantum
 * boundaries, so its SimStats, metric snapshot, and per-branch stall
 * map equal a solo simulateWithDecoded() of the same (seed, predictor)
 * — the property tests/test_batched.cc enforces. A lane that raises
 * SimError is reported failed in its own slot without disturbing the
 * other lanes. When the fast path is ineligible (forceReference or the
 * VANGUARD_FORCE_REFERENCE kill switch), lanes run back to back on the
 * reference path instead, preserving the same per-lane results and
 * isolation. Fault-injection draw sequences are not virtualized per
 * lane, so callers arming the injector should prefer solo runs (the
 * experiment engine does).
 */
std::vector<BatchLaneResult>
simulateBatch(const Program &prog, const DecodedProgram &decoded,
              const std::vector<BatchLaneInput> &lanes,
              const MachineConfig &cfg, const SimOptions &opts = {});

/**
 * Flatten one run's SimStats into dotted metric paths
 * (`uarch.pipeline.cycles`, `uarch.icache.misses`,
 * `uarch.dbb.maxOccupancy` max-aggregated, plus the predictor's
 * `bpred.*` counters) for MetricsRegistry::mergeJobSnapshot.
 */
MetricSnapshot simStatsSnapshot(const SimStats &stats);

/**
 * Functionally pre-execute prog and record, for every dynamic PREDICT,
 * the outcome of the original branch it stands for (reconstructed from
 * its RESOLVE). The outcome sequence is prediction-independent by
 * construction of the transformation.
 */
std::vector<bool> prerecordPredictOutcomes(const Program &prog,
                                           const Memory &mem,
                                           uint64_t max_insts);

} // namespace vanguard

#endif // VANGUARD_UARCH_PIPELINE_HH
