#include "uarch/cache.hh"

#include "support/logging.hh"

namespace vanguard {

namespace {

bool
isPow2(uint64_t v)
{
    return v != 0 && (v & (v - 1)) == 0;
}

unsigned
log2Of(uint64_t v)
{
    unsigned s = 0;
    while ((uint64_t{1} << s) < v)
        ++s;
    return s;
}

} // namespace

Cache::Cache(const CacheConfig &cfg) : cfg_(cfg)
{
    uint64_t total_lines = uint64_t{cfg.sizeKB} * 1024 / cfg.lineBytes;
    vg_assert(total_lines % cfg.ways == 0, "cache geometry");
    num_sets_ = static_cast<unsigned>(total_lines / cfg.ways);
    lines_.resize(total_lines);

    line_pow2_ = isPow2(cfg_.lineBytes);
    if (line_pow2_)
        line_shift_ = log2Of(cfg_.lineBytes);
    sets_pow2_ = isPow2(num_sets_);
    if (sets_pow2_) {
        set_shift_ = log2Of(num_sets_);
        set_mask_ = num_sets_ - 1;
    }
}

uint64_t
Cache::setIndex(uint64_t addr) const
{
    // Modulo (not mask) so non-power-of-two geometries like the
    // Sec. 6.1 24KB I$ are expressible.
    return (addr / cfg_.lineBytes) % num_sets_;
}

uint64_t
Cache::tagOf(uint64_t addr) const
{
    return (addr / cfg_.lineBytes) / num_sets_;
}

bool
Cache::contains(uint64_t addr) const
{
    uint64_t set = setIndex(addr);
    uint64_t tag = tagOf(addr);
    const Line *base = &lines_[set * cfg_.ways];
    for (unsigned w = 0; w < cfg_.ways; ++w)
        if (base[w].valid && base[w].tag == tag)
            return true;
    return false;
}

void
Cache::invalidateAll()
{
    for (auto &line : lines_)
        line = Line{};
    hits_ = misses_ = 0;
    tick_ = 0;
}

MemoryHierarchy::MemoryHierarchy(const MachineConfig &cfg)
    : l1i_(cfg.l1i), l1d_(cfg.l1d), l2_(cfg.l2), l3_(cfg.l3),
      mem_latency_(cfg.memLatency),
      next_line_prefetch_(cfg.icacheNextLinePrefetch)
{
}

unsigned
MemoryHierarchy::instAccess(uint64_t line_addr)
{
    unsigned penalty;
    if (l1i_.access(line_addr)) {
        penalty = 0;
    } else if (l2_.access(line_addr)) {
        penalty = l2_.latency();
    } else if (l3_.access(line_addr)) {
        penalty = l3_.latency();
    } else {
        penalty = mem_latency_;
    }

    // Optimistic next-line prefetch: bring the sequentially next line
    // into the I$ (and the levels below) off the critical path.
    if (next_line_prefetch_) {
        uint64_t next = line_addr + l1i_.lineBytes();
        if (!l1i_.contains(next)) {
            ++inst_prefetches_;
            l1i_.access(next);
            if (!l2_.contains(next)) {
                l2_.access(next);
                l3_.access(next);
            }
        }
    }
    return penalty;
}

} // namespace vanguard
