#include "uarch/cache.hh"

#include <algorithm>

#include "support/logging.hh"

namespace vanguard {

namespace {

bool
isPow2(uint64_t v)
{
    return v != 0 && (v & (v - 1)) == 0;
}

unsigned
log2Of(uint64_t v)
{
    unsigned s = 0;
    while ((uint64_t{1} << s) < v)
        ++s;
    return s;
}

} // namespace

Cache::Cache(const CacheConfig &cfg) : cfg_(cfg)
{
    uint64_t total_lines = uint64_t{cfg.sizeKB} * 1024 / cfg.lineBytes;
    vg_assert(total_lines % cfg.ways == 0, "cache geometry");
    vg_assert(cfg.ways >= 1 && cfg.ways <= 64,
              "cache ways must fit the per-set valid bitmask");
    num_sets_ = static_cast<unsigned>(total_lines / cfg.ways);
    tags_.assign(total_lines, 0);
    lrus_.assign(total_lines, 0);
    valid_.assign(num_sets_, 0);
    mru_.assign(num_sets_, 0);
    full_mask_ = cfg.ways == 64 ? ~uint64_t{0}
                                : (uint64_t{1} << cfg.ways) - 1;

    line_pow2_ = isPow2(cfg_.lineBytes);
    if (line_pow2_)
        line_shift_ = log2Of(cfg_.lineBytes);
    sets_pow2_ = isPow2(num_sets_);
    if (sets_pow2_) {
        set_shift_ = log2Of(num_sets_);
        set_mask_ = num_sets_ - 1;
    }
}

uint64_t
Cache::setIndex(uint64_t addr) const
{
    // Modulo (not mask) so non-power-of-two geometries like the
    // Sec. 6.1 24KB I$ are expressible.
    return (addr / cfg_.lineBytes) % num_sets_;
}

uint64_t
Cache::tagOf(uint64_t addr) const
{
    return (addr / cfg_.lineBytes) / num_sets_;
}

bool
Cache::contains(uint64_t addr) const
{
    uint64_t set = setIndex(addr);
    uint64_t tag = tagOf(addr);
    const uint64_t *tags = &tags_[set * cfg_.ways];
    uint64_t vm = valid_[set];
    for (unsigned w = 0; w < cfg_.ways; ++w)
        if (((vm >> w) & 1) != 0 && tags[w] == tag)
            return true;
    return false;
}

void
Cache::invalidateAll()
{
    // Stale tags_/lrus_/mru_ entries are unreachable once their valid
    // bits drop, so clearing the bitmasks suffices.
    std::fill(valid_.begin(), valid_.end(), 0);
    hits_ = misses_ = 0;
    tick_ = 0;
}

MemoryHierarchy::MemoryHierarchy(const MachineConfig &cfg)
    : l1i_(cfg.l1i), l1d_(cfg.l1d), l2_(cfg.l2), l3_(cfg.l3),
      mem_latency_(cfg.memLatency),
      next_line_prefetch_(cfg.icacheNextLinePrefetch)
{
}

} // namespace vanguard
